// Training-loop resilience: checkpoint writes that survive injected
// transient I/O failures via retry/backoff, hard I/O outages that exhaust
// the retry budget without killing the run, and SIGINT/SIGTERM stop
// requests that end training at an epoch boundary with a final checkpoint.

#include <csignal>
#include <dirent.h>

#include <string>

#include <gtest/gtest.h>

#include "core/cpgan.h"
#include "data/synthetic.h"
#include "train/checkpoint.h"
#include "train/fault.h"
#include "train/signal.h"
#include "util/fileio.h"
#include "util/rng.h"

namespace cpgan::core {
namespace {

graph::Graph SmallCommunityGraph(uint64_t seed = 3) {
  data::CommunityGraphParams params;
  params.num_nodes = 100;
  params.num_edges = 320;
  params.num_communities = 5;
  params.intra_fraction = 0.9;
  params.degree_exponent = 2.6;
  util::Rng rng(seed);
  return data::MakeCommunityGraph(params, rng);
}

CpganConfig FastConfig() {
  CpganConfig config;
  config.epochs = 16;
  config.subgraph_size = 64;
  config.hidden_dim = 12;
  config.latent_dim = 6;
  config.feature_dim = 5;
  config.seed = 11;
  return config;
}

std::string TempDirFor(const char* name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  util::MakeDirs(dir);
  if (DIR* d = ::opendir(dir.c_str())) {
    while (struct dirent* entry = ::readdir(d)) {
      std::remove((dir + "/" + entry->d_name).c_str());
    }
    ::closedir(d);
  }
  return dir;
}

class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    train::ClearStopRequest();
    util::InjectAtomicWriteFailures(0);
  }
  void TearDown() override {
    train::ClearStopRequest();
    util::InjectAtomicWriteFailures(0);
  }
};

TEST_F(ResilienceTest, CheckpointSurvivesTransientIoFailure) {
  graph::Graph observed = SmallCommunityGraph();
  CpganConfig config = FastConfig();
  config.checkpoint_dir = TempDirFor("resilience_io_retry");
  config.checkpoint_every = 8;
  Cpgan model(config);
  train::FaultPlan plan;
  plan.io_fail_epoch = 7;   // poisons the write at the epoch-8 checkpoint
  plan.io_fail_count = 2;   // two transient failures, then the disk heals
  model.SetFaultPlan(plan);
  TrainStats stats = model.Fit(observed);

  // Training finished, the flaky writes were retried, and the checkpoint on
  // disk is complete and loadable (atomic replace means no torn file).
  EXPECT_EQ(static_cast<int>(stats.g_loss.size()), config.epochs);
  EXPECT_GE(stats.checkpoint_retries, 2);
  EXPECT_EQ(stats.checkpoints_written, 2);  // epoch 8 + final
  std::string latest = train::LatestCheckpoint(config.checkpoint_dir);
  ASSERT_FALSE(latest.empty());
  std::string error;
  EXPECT_TRUE(train::ValidateCheckpoint(latest, nullptr, 0, &error)) << error;
}

TEST_F(ResilienceTest, ExhaustedIoRetriesDoNotKillTraining) {
  graph::Graph observed = SmallCommunityGraph();
  CpganConfig config = FastConfig();
  config.checkpoint_dir = TempDirFor("resilience_io_outage");
  config.checkpoint_every = 8;
  Cpgan model(config);
  train::FaultPlan plan;
  plan.io_fail_epoch = 7;
  plan.io_fail_count = 1000;  // outage outlasts any backoff budget
  model.SetFaultPlan(plan);
  TrainStats stats = model.Fit(observed);

  // The epoch-8 checkpoint is lost but training continues to completion;
  // the injection is consumed by the failed attempts, so the final
  // checkpoint (post-outage in wall-clock, but injections are counted per
  // write) depends on how many attempts the budget allowed. The invariants:
  // the run finished, the model is usable, and no torn file exists.
  EXPECT_EQ(static_cast<int>(stats.g_loss.size()), config.epochs);
  EXPECT_TRUE(model.trained());
  util::InjectAtomicWriteFailures(0);
  std::string latest = train::LatestCheckpoint(config.checkpoint_dir);
  if (!latest.empty()) {
    std::string error;
    EXPECT_TRUE(train::ValidateCheckpoint(latest, nullptr, 0, &error)) << error;
  }
}

TEST_F(ResilienceTest, StopRequestEndsTrainingWithFinalCheckpoint) {
  graph::Graph observed = SmallCommunityGraph();
  CpganConfig config = FastConfig();
  config.epochs = 400;  // far more than we intend to run
  config.checkpoint_dir = TempDirFor("resilience_interrupt");
  config.checkpoint_every = 1000;  // only the interrupt writes one
  Cpgan model(config);
  train::RequestStop();  // as a signal handler would
  TrainStats stats = model.Fit(observed);

  EXPECT_TRUE(stats.interrupted);
  EXPECT_LT(static_cast<int>(stats.g_loss.size()), config.epochs);
  // The interrupt wrote a final checkpoint so the run is resumable.
  std::string latest = train::LatestCheckpoint(config.checkpoint_dir);
  ASSERT_FALSE(latest.empty());
  std::string error;
  EXPECT_TRUE(train::ValidateCheckpoint(latest, nullptr, 0, &error)) << error;

  // A second run resumes from it and completes cleanly.
  train::ClearStopRequest();
  CpganConfig resume_config = config;
  resume_config.epochs = static_cast<int>(stats.g_loss.size()) + 4;
  Cpgan resumed(resume_config);
  ASSERT_TRUE(resumed.ResumeFrom(latest));
  TrainStats resumed_stats = resumed.Fit(observed);
  EXPECT_FALSE(resumed_stats.interrupted);
  EXPECT_GT(resumed_stats.start_epoch, 0);
  EXPECT_TRUE(resumed.trained());
}

TEST_F(ResilienceTest, SignalHandlerSetsStopFlag) {
  train::InstallStopSignalHandlers();
  EXPECT_FALSE(train::StopRequested());
  std::raise(SIGTERM);
  EXPECT_TRUE(train::StopRequested());
  train::ClearStopRequest();
  std::raise(SIGINT);
  EXPECT_TRUE(train::StopRequested());
  train::ClearStopRequest();
}

}  // namespace
}  // namespace cpgan::core
