#include <cmath>

#include <gtest/gtest.h>

#include "graph/graph.h"
#include "graph/stats.h"
#include "util/rng.h"

namespace cpgan::graph {
namespace {

TEST(GiniTest, EqualDegreesGiveZero) {
  EXPECT_NEAR(GiniCoefficient({5, 5, 5, 5}), 0.0, 1e-9);
}

TEST(GiniTest, MaximalInequalityApproachesOne) {
  std::vector<int> degrees(100, 0);
  degrees[0] = 1000;
  EXPECT_GT(GiniCoefficient(degrees), 0.95);
}

TEST(GiniTest, KnownSmallCase) {
  // degrees {1, 3}: Gini = (2*(1*1+2*3))/(2*4) - 3/2 = 14/8 - 1.5 = 0.25.
  EXPECT_NEAR(GiniCoefficient({1, 3}), 0.25, 1e-9);
}

TEST(GiniTest, EmptyAndZeroSafe) {
  EXPECT_DOUBLE_EQ(GiniCoefficient({}), 0.0);
  EXPECT_DOUBLE_EQ(GiniCoefficient({0, 0}), 0.0);
}

TEST(PowerLawTest, RecoversExponentFromSample) {
  // Sample from a *discrete* power law p(d) proportional to d^-2.5 via
  // inverse-CDF over a finite support (the MLE assumes a discrete law).
  util::Rng rng(1);
  constexpr double kAlpha = 2.5;
  constexpr int kMaxDegree = 2000;
  std::vector<double> weights(kMaxDegree + 1, 0.0);
  for (int d = 1; d <= kMaxDegree; ++d) {
    weights[d] = std::pow(static_cast<double>(d), -kAlpha);
  }
  util::CumulativeSampler sampler(weights);
  std::vector<int> degrees;
  for (int i = 0; i < 20000; ++i) degrees.push_back(sampler.Sample(rng));
  // Clauset's continuous approximation of the discrete MLE is only accurate
  // for dmin of a few; estimate on the tail d >= 4.
  double alpha = PowerLawExponent(degrees, 4);
  EXPECT_NEAR(alpha, kAlpha, 0.25);
}

TEST(PowerLawTest, HigherExponentForFasterDecay) {
  util::Rng rng(2);
  auto sample = [&rng](double alpha) {
    std::vector<double> weights(1001, 0.0);
    for (int d = 1; d <= 1000; ++d) {
      weights[d] = std::pow(static_cast<double>(d), -alpha);
    }
    util::CumulativeSampler sampler(weights);
    std::vector<int> degrees;
    for (int i = 0; i < 5000; ++i) degrees.push_back(sampler.Sample(rng));
    return PowerLawExponent(degrees, 1);
  };
  EXPECT_GT(sample(3.2), sample(1.8));
}

TEST(PowerLawTest, RespectsDmin) {
  std::vector<int> degrees = {1, 1, 1, 1, 5, 6, 7};
  double with_all = PowerLawExponent(degrees, 1);
  double tail_only = PowerLawExponent(degrees, 5);
  EXPECT_NE(with_all, tail_only);
}

TEST(PowerLawTest, UndefinedFitIsNaN) {
  // Regression for the 0.0 sentinel: an undefined fit used to return 0.0,
  // which is a legal-looking exponent (|pwe_a - 0.0| read as a real
  // distance in the Table IV metrics). Undefined fits are now NaN.
  EXPECT_TRUE(std::isnan(PowerLawExponent({}, 1)));
  // No degree reaches dmin.
  EXPECT_TRUE(std::isnan(PowerLawExponent({1, 2, 3}, 10)));
  // All degrees below dmin are ignored, so an all-zeros sequence has no
  // fittable tail either.
  EXPECT_TRUE(std::isnan(PowerLawExponent({0, 0, 0}, 1)));
  // A defined fit is always > 1 and finite.
  double alpha = PowerLawExponent({2, 3, 4, 5}, 2);
  EXPECT_TRUE(std::isfinite(alpha));
  EXPECT_GT(alpha, 1.0);
}

TEST(DegreeHistogramTest, NormalizedWithTailFold) {
  Graph g(4, {{0, 1}, {0, 2}, {0, 3}});
  std::vector<double> hist = DegreeHistogram(g, 2);
  ASSERT_EQ(hist.size(), 3u);
  // Degrees: 3,1,1,1 -> bucket1 = 3/4, bucket2 (folded 3) = 1/4.
  EXPECT_NEAR(hist[0], 0.0, 1e-9);
  EXPECT_NEAR(hist[1], 0.75, 1e-9);
  EXPECT_NEAR(hist[2], 0.25, 1e-9);
}

TEST(ClusteringHistogramTest, SumsToOne) {
  Graph g(5, {{0, 1}, {1, 2}, {2, 0}, {3, 4}});
  std::vector<double> hist = ClusteringHistogram(g, 10);
  double total = 0.0;
  for (double h : hist) total += h;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SummaryTest, FieldsConsistent) {
  Graph g(5, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}});
  util::Rng rng(2);
  GraphSummary s = ComputeSummary(g, rng);
  EXPECT_EQ(s.num_nodes, 5);
  EXPECT_EQ(s.num_edges, 5);
  EXPECT_DOUBLE_EQ(s.mean_degree, 2.0);
  EXPECT_GT(s.cpl, 0.0);
  EXPECT_GE(s.gini, 0.0);
  EXPECT_GT(s.avg_clustering, 0.0);
}

}  // namespace
}  // namespace cpgan::graph

namespace cpgan::graph {
namespace {

TEST(AssortativityTest, StarIsDisassortative) {
  std::vector<Edge> edges;
  for (int i = 1; i < 20; ++i) edges.emplace_back(0, i);
  Graph star(20, edges);
  EXPECT_LT(DegreeAssortativity(star), -0.9);
}

TEST(AssortativityTest, RegularGraphUndefinedIsZero) {
  std::vector<Edge> edges;
  for (int i = 0; i < 10; ++i) edges.emplace_back(i, (i + 1) % 10);
  Graph cycle(10, edges);
  EXPECT_DOUBLE_EQ(DegreeAssortativity(cycle), 0.0);
  EXPECT_DOUBLE_EQ(DegreeAssortativity(Graph(5)), 0.0);
}

TEST(AssortativityTest, BoundedByOne) {
  util::Rng rng(31);
  std::vector<Edge> edges;
  for (int i = 0; i < 200; ++i) {
    edges.emplace_back(static_cast<int>(rng.UniformInt(60)),
                       static_cast<int>(rng.UniformInt(60)));
  }
  Graph g(60, edges);
  double r = DegreeAssortativity(g);
  EXPECT_GE(r, -1.0001);
  EXPECT_LE(r, 1.0001);
}

}  // namespace
}  // namespace cpgan::graph
