#include <cmath>
#include <cstdio>
#include <set>

#include <gtest/gtest.h>

#include "graph/io.h"
#include "graph/spectral.h"
#include "graph/split.h"

namespace cpgan::graph {
namespace {

TEST(SpectralTest, ShapeAndPadding) {
  Graph g(5, {{0, 1}, {1, 2}});
  util::Rng rng(1);
  tensor::Matrix emb = SpectralEmbedding(g, 8, rng);
  EXPECT_EQ(emb.rows(), 5);
  EXPECT_EQ(emb.cols(), 8);
  // Columns beyond n are zero-padded.
  for (int r = 0; r < 5; ++r) {
    EXPECT_FLOAT_EQ(emb.At(r, 6), 0.0f);
  }
}

TEST(SpectralTest, SeparatesTwoCliques) {
  // Two K5 cliques joined by one bridge: the embedding rows within a clique
  // should be much closer to each other than across cliques.
  std::vector<Edge> edges;
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) {
      edges.emplace_back(i, j);
      edges.emplace_back(5 + i, 5 + j);
    }
  }
  edges.emplace_back(0, 5);
  Graph g(10, edges);
  util::Rng rng(2);
  tensor::Matrix emb = SpectralEmbedding(g, 2, rng, 60);
  auto dist = [&emb](int a, int b) {
    double d = 0.0;
    for (int c = 0; c < 2; ++c) {
      double diff = emb.At(a, c) - emb.At(b, c);
      d += diff * diff;
    }
    return std::sqrt(d);
  };
  double intra = dist(1, 2) + dist(6, 7);
  double inter = dist(1, 6) + dist(2, 7);
  EXPECT_LT(intra, inter);
}

TEST(IoTest, RoundTrip) {
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  std::string path = ::testing::TempDir() + "/graph.txt";
  ASSERT_TRUE(SaveEdgeList(g, path));
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_nodes(), 4);
  EXPECT_EQ(loaded->num_edges(), 3);
  EXPECT_TRUE(loaded->HasEdge(1, 2));
  std::remove(path.c_str());
}

TEST(IoTest, SkipsCommentsAndCompactsIds) {
  std::string path = ::testing::TempDir() + "/comments.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("# comment\n100 200\n% other comment\n200 300\n", f);
  std::fclose(f);
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_nodes(), 3);
  EXPECT_EQ(loaded->num_edges(), 2);
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(LoadEdgeList("/does/not/exist.txt").has_value());
  LoadResult result = LoadEdgeListDetailed("/does/not/exist.txt");
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.error.empty());
}

TEST(IoTest, DetailedLoadCountsSkippedIrregularities) {
  std::string path = ::testing::TempDir() + "/dirty.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs(
      "0 1\n"
      "banana\n"        // malformed
      "1 2\n"
      "2 2\n"           // self-loop
      "1 0\n"           // duplicate of 0 1 (reversed)
      "0 1\n"           // duplicate
      "-3 4\n"          // malformed (negative id)
      "3 4\n",
      f);
  std::fclose(f);
  LoadResult result = LoadEdgeListDetailed(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.malformed_lines, 2);
  EXPECT_EQ(result.self_loops, 1);
  EXPECT_EQ(result.duplicate_edges, 2);
  EXPECT_EQ(result.total_skipped(), 5);
  EXPECT_EQ(result.graph->num_nodes(), 5);  // 0,1,2,3,4 all interned
  EXPECT_EQ(result.graph->num_edges(), 3);  // 0-1, 1-2, 3-4
  std::remove(path.c_str());
}

TEST(IoTest, StrictModeFailsOnFirstIrregularity) {
  std::string path = ::testing::TempDir() + "/strict.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("0 1\n1 1\n2 3\n", f);
  std::fclose(f);
  LoadOptions strict;
  strict.strict = true;
  LoadResult result = LoadEdgeListDetailed(path, strict);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("self-loop"), std::string::npos)
      << result.error;
  EXPECT_NE(result.error.find("line 2"), std::string::npos) << result.error;
  // The same file loads in lenient mode.
  EXPECT_TRUE(LoadEdgeListDetailed(path).ok());
  std::remove(path.c_str());
}

TEST(IoTest, CleanFileReportsZeroSkips) {
  std::string path = ::testing::TempDir() + "/clean.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("0 1\n1 2\n", f);
  std::fclose(f);
  LoadResult result = LoadEdgeListDetailed(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.total_skipped(), 0);
  std::remove(path.c_str());
}

TEST(SplitTest, PartitionsEdges) {
  std::vector<Edge> edges;
  for (int i = 0; i < 50; ++i) edges.emplace_back(i, i + 1);
  Graph g(51, edges);
  util::Rng rng(3);
  EdgeSplit split = RandomEdgeSplit(g, 0.8, rng);
  EXPECT_EQ(split.train_edges.size() + split.test_edges.size(), 50u);
  EXPECT_EQ(split.train_edges.size(), 40u);
  EXPECT_EQ(split.train.num_edges(), 40);
  // Train and test disjoint.
  std::set<Edge> train_set(split.train_edges.begin(),
                           split.train_edges.end());
  for (const Edge& e : split.test_edges) {
    EXPECT_EQ(train_set.count(e), 0u);
  }
}

TEST(SplitTest, NegativesAreNonEdges) {
  std::vector<Edge> edges;
  for (int i = 0; i < 30; ++i) edges.emplace_back(i, i + 1);
  Graph g(31, edges);
  util::Rng rng(4);
  EdgeSplit split = RandomEdgeSplit(g, 0.8, rng);
  EXPECT_EQ(split.negative_edges.size(), split.test_edges.size());
  for (const auto& [u, v] : split.negative_edges) {
    EXPECT_FALSE(g.HasEdge(u, v));
    EXPECT_NE(u, v);
  }
}

}  // namespace
}  // namespace cpgan::graph
