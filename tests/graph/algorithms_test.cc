#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace cpgan::graph {
namespace {

Graph PathGraph(int n) {
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph(n, edges);
}

Graph CompleteGraph(int n) {
  std::vector<Edge> edges;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  }
  return Graph(n, edges);
}

TEST(BfsTest, DistancesOnPath) {
  Graph g = PathGraph(5);
  std::vector<int> dist = BfsDistances(g, 0);
  EXPECT_EQ(dist, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(BfsTest, UnreachableIsMinusOne) {
  Graph g(4, {{0, 1}});
  std::vector<int> dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], -1);
  EXPECT_EQ(dist[3], -1);
}

TEST(ComponentsTest, CountsComponents) {
  Graph g(6, {{0, 1}, {1, 2}, {3, 4}});
  std::vector<int> comp = ConnectedComponents(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[5], comp[0]);
  EXPECT_NE(comp[5], comp[3]);
}

TEST(ComponentsTest, LargestComponent) {
  Graph g(6, {{0, 1}, {1, 2}, {3, 4}});
  std::vector<int> largest = LargestComponent(g);
  EXPECT_EQ(largest, (std::vector<int>{0, 1, 2}));
}

TEST(ClusteringTest, TriangleHasCoefficientOne) {
  Graph g = CompleteGraph(3);
  std::vector<double> cc = LocalClusteringCoefficients(g);
  for (double c : cc) EXPECT_DOUBLE_EQ(c, 1.0);
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(g), 1.0);
}

TEST(ClusteringTest, StarHasCoefficientZero) {
  Graph g(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(g), 0.0);
}

TEST(ClusteringTest, CompleteGraphMinusEdge) {
  // K4 minus one edge: the two nodes opposite the missing edge have cc
  // 2*2/(3*2)=2/3; the endpoints of the missing edge have cc 1.
  Graph g(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}});
  std::vector<double> cc = LocalClusteringCoefficients(g);
  EXPECT_NEAR(cc[0], 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(cc[1], 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(cc[2], 1.0, 1e-9);
  EXPECT_NEAR(cc[3], 1.0, 1e-9);
}

TEST(CplTest, ExactOnSmallPath) {
  Graph g = PathGraph(4);
  util::Rng rng(1);
  // Pairs: (0,1)=1 (0,2)=2 (0,3)=3 (1,2)=1 (1,3)=2 (2,3)=1 -> mean 10/6.
  EXPECT_NEAR(CharacteristicPathLength(g, rng, 100), 10.0 / 6.0, 1e-9);
}

TEST(CplTest, IgnoresSmallComponents) {
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {4, 5}};
  Graph g(6, edges);
  util::Rng rng(2);
  // Largest component is the path 0-1-2-3.
  EXPECT_NEAR(CharacteristicPathLength(g, rng, 100), 10.0 / 6.0, 1e-9);
}

TEST(CplTest, SampledEstimateClose) {
  util::Rng build_rng(3);
  std::vector<Edge> edges;
  int n = 200;
  for (int i = 1; i < n; ++i) {
    edges.emplace_back(static_cast<int>(build_rng.UniformInt(i)), i);
  }
  Graph g(n, edges);
  util::Rng rng_exact(4);
  util::Rng rng_sampled(5);
  double exact = CharacteristicPathLength(g, rng_exact, n);
  double sampled = CharacteristicPathLength(g, rng_sampled, 32);
  EXPECT_NEAR(sampled, exact, exact * 0.2);
}

TEST(BfsOrderTest, StartsAtStartAndCoversAll) {
  Graph g(6, {{0, 1}, {1, 2}, {3, 4}});
  std::vector<int> order = BfsOrder(g, 1);
  EXPECT_EQ(order.size(), 6u);
  EXPECT_EQ(order[0], 1);
  std::vector<int> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(TrianglesTest, Counts) {
  EXPECT_EQ(CountTriangles(CompleteGraph(3)), 1);
  EXPECT_EQ(CountTriangles(CompleteGraph(4)), 4);
  EXPECT_EQ(CountTriangles(PathGraph(10)), 0);
}

}  // namespace
}  // namespace cpgan::graph

namespace cpgan::graph {
namespace {

TEST(PageRankTest, SumsToOneAndRanksHubsHigher) {
  std::vector<Edge> edges;
  for (int i = 1; i < 20; ++i) edges.emplace_back(0, i);
  Graph star(20, edges);
  std::vector<double> pr = PageRank(star);
  double total = 0.0;
  for (double r : pr) total += r;
  EXPECT_NEAR(total, 1.0, 1e-6);
  for (int v = 1; v < 20; ++v) EXPECT_GT(pr[0], pr[v]);
}

TEST(PageRankTest, UniformOnRegularGraph) {
  std::vector<Edge> edges;
  for (int i = 0; i < 12; ++i) edges.emplace_back(i, (i + 1) % 12);
  Graph cycle(12, edges);
  std::vector<double> pr = PageRank(cycle);
  for (double r : pr) EXPECT_NEAR(r, 1.0 / 12.0, 1e-6);
}

TEST(PageRankTest, HandlesDanglingAndEmpty) {
  Graph isolated(5);
  std::vector<double> pr = PageRank(isolated);
  for (double r : pr) EXPECT_NEAR(r, 0.2, 1e-9);
  EXPECT_TRUE(PageRank(Graph(0)).empty());
}

TEST(CoreNumbersTest, CliquePlusTail) {
  // K4 (nodes 0-3) with a path 3-4-5 hanging off.
  Graph g(6, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4},
              {4, 5}});
  std::vector<int> core = CoreNumbers(g);
  EXPECT_EQ(core[0], 3);
  EXPECT_EQ(core[1], 3);
  EXPECT_EQ(core[2], 3);
  EXPECT_EQ(core[3], 3);
  EXPECT_EQ(core[4], 1);
  EXPECT_EQ(core[5], 1);
}

TEST(CoreNumbersTest, TreeIsOneCore) {
  Graph g(5, {{0, 1}, {0, 2}, {2, 3}, {2, 4}});
  for (int c : CoreNumbers(g)) EXPECT_EQ(c, 1);
}

TEST(CoreNumbersTest, CoreIsAtMostDegree) {
  util::Rng rng(77);
  std::vector<Edge> edges;
  for (int i = 0; i < 200; ++i) {
    edges.emplace_back(static_cast<int>(rng.UniformInt(50)),
                       static_cast<int>(rng.UniformInt(50)));
  }
  Graph g(50, edges);
  std::vector<int> core = CoreNumbers(g);
  for (int v = 0; v < 50; ++v) {
    EXPECT_LE(core[v], g.degree(v));
    EXPECT_GE(core[v], 0);
  }
}

}  // namespace
}  // namespace cpgan::graph
