#include <algorithm>

#include <gtest/gtest.h>

#include "graph/graph.h"
#include "util/rng.h"

namespace cpgan::graph {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g(5);
  EXPECT_EQ(g.num_nodes(), 5);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.degree(0), 0);
  EXPECT_TRUE(g.neighbors(0).empty());
}

TEST(GraphTest, DeduplicatesAndSymmetrizes) {
  Graph g(3, {{0, 1}, {1, 0}, {0, 1}, {1, 2}});
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(GraphTest, DropsSelfLoops) {
  Graph g(2, {{0, 0}, {0, 1}, {1, 1}});
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(GraphTest, NeighborsSorted) {
  Graph g(5, {{2, 4}, {2, 0}, {2, 3}, {2, 1}});
  auto nbrs = g.neighbors(2);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 4u);
}

TEST(GraphTest, EdgesCanonical) {
  Graph g(4, {{3, 1}, {0, 2}});
  auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 2u);
  for (const auto& [u, v] : edges) EXPECT_LT(u, v);
}

TEST(GraphTest, DegreesAndMeanDegree) {
  Graph g(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_EQ(g.Degrees(), (std::vector<int>{3, 1, 1, 1}));
  EXPECT_DOUBLE_EQ(g.MeanDegree(), 1.5);
}

TEST(GraphTest, InducedSubgraphRelabels) {
  Graph g(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  Graph sub = g.InducedSubgraph({1, 2, 4});
  EXPECT_EQ(sub.num_nodes(), 3);
  EXPECT_EQ(sub.num_edges(), 1);  // only 1-2 survives
  EXPECT_TRUE(sub.HasEdge(0, 1));
  EXPECT_FALSE(sub.HasEdge(0, 2));
}

// Property sweep: invariants that must hold for any random graph.
class GraphPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GraphPropertyTest, HandshakeLemma) {
  util::Rng rng(GetParam());
  int n = 20 + static_cast<int>(rng.UniformInt(80));
  std::vector<Edge> edges;
  int m = static_cast<int>(rng.UniformInt(200));
  for (int i = 0; i < m; ++i) {
    edges.emplace_back(static_cast<int>(rng.UniformInt(n)),
                       static_cast<int>(rng.UniformInt(n)));
  }
  Graph g(n, edges);
  int64_t degree_sum = 0;
  for (int v = 0; v < n; ++v) degree_sum += g.degree(v);
  EXPECT_EQ(degree_sum, 2 * g.num_edges());
}

TEST_P(GraphPropertyTest, HasEdgeMatchesNeighborLists) {
  util::Rng rng(GetParam() + 1000);
  int n = 30;
  std::vector<Edge> edges;
  for (int i = 0; i < 60; ++i) {
    edges.emplace_back(static_cast<int>(rng.UniformInt(n)),
                       static_cast<int>(rng.UniformInt(n)));
  }
  Graph g(n, edges);
  for (int u = 0; u < n; ++u) {
    for (int v : g.neighbors(u)) {
      EXPECT_TRUE(g.HasEdge(u, v));
      EXPECT_TRUE(g.HasEdge(v, u));
    }
  }
}

TEST_P(GraphPropertyTest, InducedSubgraphEdgeSubset) {
  util::Rng rng(GetParam() + 2000);
  int n = 40;
  std::vector<Edge> edges;
  for (int i = 0; i < 100; ++i) {
    edges.emplace_back(static_cast<int>(rng.UniformInt(n)),
                       static_cast<int>(rng.UniformInt(n)));
  }
  Graph g(n, edges);
  std::vector<int> nodes = rng.SampleWithoutReplacement(n, 15);
  Graph sub = g.InducedSubgraph(nodes);
  for (const auto& [a, b] : sub.Edges()) {
    EXPECT_TRUE(g.HasEdge(nodes[a], nodes[b]));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace cpgan::graph
