// Loader-parity suite (docs/INTERNALS.md, "Streaming ingest"): the text
// loader, the text->binary converter, and the mmap binary loader must agree
// on every input — same dirty-input counters, same strict-mode failures,
// same CSR bit for bit, at any thread count. Also pins the two SaveEdgeList
// bugs fixed alongside the binary format: the round trip used to drop
// isolated nodes and relabel ids (no "# nodes N" header), and wrote through
// a bare fopen (no atomic replacement).

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "data/loader.h"
#include "graph/binary_io.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "util/check.h"
#include "util/fileio.h"
#include "util/thread_pool.h"

namespace cpgan::graph {
namespace {

class TempPath {
 public:
  TempPath() {
    char buffer[] = "/tmp/cpgan_parity_XXXXXX";
    int fd = mkstemp(buffer);
    CPGAN_CHECK(fd >= 0);
    path_ = buffer;
    close(fd);
  }
  explicit TempPath(const std::string& contents) : TempPath() {
    std::ofstream out(path_, std::ios::binary);
    out << contents;
  }
  ~TempPath() { std::remove(path_.c_str()); }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Loads `text` both ways (text loader; convert -> binary loader) and
/// asserts identical counters and an identical graph. Returns the graph.
Graph ExpectParity(const std::string& text, const LoadOptions& options = {}) {
  TempPath text_file(text);
  TempPath binary_file;
  LoadResult from_text = LoadEdgeListDetailed(text_file.path(), options);
  CPGAN_CHECK_MSG(from_text.ok(), from_text.error.c_str());
  ConvertResult converted = ConvertEdgeListToBinary(
      text_file.path(), binary_file.path(), options);
  EXPECT_TRUE(converted.ok()) << converted.error;
  EXPECT_EQ(converted.malformed_lines, from_text.malformed_lines);
  EXPECT_EQ(converted.self_loops, from_text.self_loops);
  EXPECT_EQ(converted.duplicate_edges, from_text.duplicate_edges);
  EXPECT_EQ(converted.num_nodes, from_text.graph->num_nodes());
  EXPECT_EQ(converted.num_edges, from_text.graph->num_edges());
  LoadResult from_binary = LoadBinaryEdgeListDetailed(binary_file.path());
  EXPECT_TRUE(from_binary.ok()) << from_binary.error;
  EXPECT_EQ(from_binary.graph->num_nodes(), from_text.graph->num_nodes());
  EXPECT_EQ(from_binary.graph->Edges(), from_text.graph->Edges());
  return *from_text.graph;
}

TEST(IngestParity, CleanInput) {
  Graph g = ExpectParity("0 1\n1 2\n2 3\n");
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 3);
}

TEST(IngestParity, DirtyInputCountersMatch) {
  // One malformed line, one self-loop, two duplicates (one reversed).
  ExpectParity(
      "0 1\n"
      "1 2 junk\n"
      "3 3\n"
      "1 0\n"
      "0 1\n"
      "1 2\n");
}

TEST(IngestParity, CrlfAndBomTolerated) {
  ExpectParity("\xEF\xBB\xBF# comment\r\n0 1\r\n1 2\r\n");
}

TEST(IngestParity, DeclaredNodeHeaderHonoredByBothPaths) {
  Graph g = ExpectParity("# nodes 7\n5 6\n0 2\n");
  // Verbatim ids, no interning: 7 nodes, edges exactly as written.
  EXPECT_EQ(g.num_nodes(), 7);
  EXPECT_EQ(g.Edges(), (std::vector<Edge>{{0, 2}, {5, 6}}));
}

TEST(IngestParity, DeclaredRangeViolationCountedInBothPaths) {
  ExpectParity("# nodes 3\n0 1\n0 9\n");  // 0 9 out of range -> malformed
}

TEST(IngestParity, StrictModeFailsIdenticallyAcrossPaths) {
  TempPath text_file("0 1\n2 2\n");
  TempPath binary_file;
  LoadOptions strict;
  strict.strict = true;
  LoadResult from_text = LoadEdgeListDetailed(text_file.path(), strict);
  ConvertResult converted =
      ConvertEdgeListToBinary(text_file.path(), binary_file.path(), strict);
  ASSERT_FALSE(from_text.ok());
  ASSERT_FALSE(converted.ok());
  EXPECT_EQ(converted.error, from_text.error);
  EXPECT_NE(from_text.error.find("line 2"), std::string::npos)
      << from_text.error;
}

TEST(IngestParity, DataLoaderRoutesBinaryFilesByMagic) {
  TempPath text_file("0 1\n1 2\n");
  TempPath binary_file;
  ASSERT_TRUE(ConvertEdgeListToBinary(text_file.path(), binary_file.path())
                  .ok());
  Graph via_text = data::LoadGraph(text_file.path());
  Graph via_binary = data::LoadGraph(binary_file.path());
  EXPECT_EQ(via_binary.num_nodes(), via_text.num_nodes());
  EXPECT_EQ(via_binary.Edges(), via_text.Edges());
}

// Satellite bug pin: SaveEdgeList -> LoadEdgeList used to collapse a graph
// with isolated nodes (they vanished) and relabel the surviving ids by
// first appearance. The "# nodes N" header makes the round trip exact.
TEST(IngestParity, SaveLoadRoundTripKeepsIsolatedNodesAndIds) {
  Graph g(6, {{4, 2}, {2, 5}});  // nodes 0, 1, 3 isolated
  TempPath file;
  ASSERT_TRUE(SaveEdgeList(g, file.path()));
  LoadResult loaded = LoadEdgeListDetailed(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(loaded.graph->num_nodes(), 6);
  EXPECT_EQ(loaded.graph->Edges(), g.Edges());
  EXPECT_EQ(loaded.graph->degree(0), 0);
  EXPECT_EQ(loaded.graph->degree(2), 2);
}

// Satellite bug pin: SaveEdgeList used to write through a bare fopen, so a
// failed write could leave a torn file. It now goes through
// util::AtomicWriteFile, which the failure injection exercises.
TEST(IngestParity, SaveEdgeListIsAtomicUnderWriteFailure) {
  Graph g(3, {{0, 1}});
  TempPath file("previous contents\n");
  util::InjectAtomicWriteFailures(1);
  EXPECT_FALSE(SaveEdgeList(g, file.path()));
  std::string contents;
  ASSERT_TRUE(util::ReadFileToString(file.path(), &contents));
  EXPECT_EQ(contents, "previous contents\n");
  util::InjectAtomicWriteFailures(0);
  EXPECT_TRUE(SaveEdgeList(g, file.path()));
}

TEST(IngestParity, TextBinaryTextGoldenRoundTrip) {
  const std::string golden =
      "# nodes 5\n"
      "0 1\n"
      "1 2\n"
      "2 4\n";  // node 3 isolated
  TempPath text_file(golden);
  TempPath binary_file;
  TempPath text_again;
  ASSERT_TRUE(ConvertEdgeListToBinary(text_file.path(), binary_file.path())
                  .ok());
  LoadResult loaded = LoadBinaryEdgeListDetailed(binary_file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  ASSERT_TRUE(SaveEdgeList(*loaded.graph, text_again.path()));
  std::string round_tripped;
  ASSERT_TRUE(util::ReadFileToString(text_again.path(), &round_tripped));
  EXPECT_EQ(round_tripped, golden);
}

TEST(IngestParity, CsrIsBitwiseIdenticalAtAnyThreadCount) {
  // 600 nodes, ~1800 edges: enough for several parallel chunks per phase.
  std::string text = "# nodes 600\n";
  for (int i = 0; i < 600; ++i) {
    text += std::to_string(i) + ' ' + std::to_string((i + 1) % 600) + '\n';
    text += std::to_string(i) + ' ' + std::to_string((i + 7) % 600) + '\n';
    text += std::to_string(i) + ' ' + std::to_string((i + 100) % 600) + '\n';
  }
  TempPath text_file(text);
  TempPath binary_file;
  ASSERT_TRUE(ConvertEdgeListToBinary(text_file.path(), binary_file.path())
                  .ok());
  const int original_threads = util::ThreadPool::Global().num_threads();
  std::vector<Edge> reference;
  for (int threads : {1, 2, 8}) {
    util::ThreadPool::SetGlobalThreads(threads);
    LoadResult loaded = LoadBinaryEdgeListDetailed(binary_file.path());
    ASSERT_TRUE(loaded.ok()) << loaded.error;
    if (reference.empty()) {
      reference = loaded.graph->Edges();
    } else {
      EXPECT_EQ(loaded.graph->Edges(), reference)
          << "CSR differs at " << threads << " thread(s)";
    }
  }
  util::ThreadPool::SetGlobalThreads(original_threads);
}

}  // namespace
}  // namespace cpgan::graph
