// Regression for the spectral-embedding rank collapse: on graphs whose
// propagation matrix is rank-deficient (disconnected low-rank components),
// Gram-Schmidt used to zero out the trailing columns — downstream GCN
// inputs silently carried all-zero feature columns. Orthonormalize now
// re-draws collapsed columns from the RNG and re-projects them, so the
// embedding always has orthonormal (full-rank) columns.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph.h"
#include "graph/spectral.h"
#include "tensor/matrix.h"
#include "testing/diff_harness.h"
#include "util/rng.h"

namespace cpgan::graph {
namespace {

double ColumnNorm(const tensor::Matrix& m, int c) {
  double n2 = 0.0;
  for (int r = 0; r < m.rows(); ++r) {
    n2 += static_cast<double>(m.At(r, c)) * m.At(r, c);
  }
  return std::sqrt(n2);
}

double ColumnDot(const tensor::Matrix& m, int a, int b) {
  double dot = 0.0;
  for (int r = 0; r < m.rows(); ++r) {
    dot += static_cast<double>(m.At(r, a)) * m.At(r, b);
  }
  return dot;
}

void ExpectOrthonormalColumns(const tensor::Matrix& emb) {
  for (int c = 0; c < emb.cols(); ++c) {
    EXPECT_NEAR(ColumnNorm(emb, c), 1.0, 1e-3) << "column " << c;
    for (int d = c + 1; d < emb.cols(); ++d) {
      EXPECT_NEAR(ColumnDot(emb, c, d), 0.0, 5e-3)
          << "columns " << c << ", " << d;
    }
  }
}

TEST(SpectralCollapseTest, TwoDisjointEdgesKeepFullRank) {
  // A + I of a single edge is the all-ones 2x2 block: rank 1 per component,
  // rank 2 total. Power iteration at dim 4 used to leave column 4 exactly
  // zero; it must now be a unit vector orthogonal to the rest.
  Graph g(4, {{0, 1}, {2, 3}});
  util::Rng rng(3);
  tensor::Matrix emb = SpectralEmbedding(g, 4, rng, 20);
  ASSERT_EQ(emb.rows(), 4);
  ASSERT_EQ(emb.cols(), 4);
  ExpectOrthonormalColumns(emb);
}

TEST(SpectralCollapseTest, TwoDisjointTrianglesKeepFullRank) {
  // Each triangle's A + I is the rank-1 all-ones 3x3 block, so the
  // propagation matrix has rank 2 at embedding dim 6 — the worst observed
  // collapse (three zero columns before the fix).
  Graph g(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  util::Rng rng(3);
  tensor::Matrix emb = SpectralEmbedding(g, 6, rng, 20);
  ASSERT_EQ(emb.cols(), 6);
  ExpectOrthonormalColumns(emb);
}

TEST(SpectralCollapseTest, EmbeddingIsThreadCountInvariant) {
  // The power iteration runs through the parallel SpMM; the determinism
  // contract requires bitwise-identical embeddings at any thread count —
  // including on degenerate inputs that trigger the re-draw path.
  std::vector<Edge> edges;
  util::Rng build(17);
  for (int i = 1; i < 80; ++i) {
    edges.emplace_back(static_cast<int>(build.UniformInt(i)), i);
  }
  Graph g(80, edges);
  tensor::Matrix want;
  {
    testing::ScopedThreads scoped(1);
    util::Rng rng(9);
    want = SpectralEmbedding(g, 16, rng, 10);
  }
  for (int threads : {2, 8}) {
    testing::ScopedThreads scoped(threads);
    util::Rng rng(9);
    tensor::Matrix got = SpectralEmbedding(g, 16, rng, 10);
    EXPECT_TRUE(testing::BitwiseEqual(got, want)) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace cpgan::graph
