// .cpge binary edge-list format (graph/binary_io.h): round-trip fidelity,
// magic sniffing, corruption/truncation/version rejection via the two CRCs,
// canonical-payload enforcement, the RAM-budget pre-check, atomic write
// failure injection, and byte-identity between the two producers (the
// text converter and the streaming writer in data/edge_stream.h).

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/edge_stream.h"
#include "graph/binary_io.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/fileio.h"
#include "util/memory_tracker.h"

namespace cpgan::graph {
namespace {

class TempPath {
 public:
  TempPath() {
    char buffer[] = "/tmp/cpgan_binary_io_XXXXXX";
    int fd = mkstemp(buffer);
    CPGAN_CHECK(fd >= 0);
    path_ = buffer;
    close(fd);
  }
  explicit TempPath(const std::string& contents) : TempPath() {
    std::ofstream out(path_, std::ios::binary);
    out << contents;
  }
  ~TempPath() { std::remove(path_.c_str()); }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string Slurp(const std::string& path) {
  std::string contents;
  CPGAN_CHECK(util::ReadFileToString(path, &contents));
  return contents;
}

void Spill(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

TEST(BinaryIo, RoundTripPreservesGraphExactly) {
  // Node 4 is isolated: the binary header carries num_nodes, so it must
  // survive the round trip with its id intact.
  Graph g(5, {{0, 1}, {1, 2}, {0, 3}});
  TempPath file;
  ASSERT_TRUE(SaveBinaryEdgeList(g, file.path()));
  LoadResult loaded = LoadBinaryEdgeListDetailed(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(loaded.graph->num_nodes(), 5);
  EXPECT_EQ(loaded.graph->Edges(), g.Edges());
  EXPECT_EQ(loaded.total_skipped(), 0);
}

TEST(BinaryIo, EmptyEdgeSetRoundTrips) {
  Graph g(3, {});
  TempPath file;
  ASSERT_TRUE(SaveBinaryEdgeList(g, file.path()));
  LoadResult loaded = LoadBinaryEdgeListDetailed(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(loaded.graph->num_nodes(), 3);
  EXPECT_EQ(loaded.graph->num_edges(), 0);
}

TEST(BinaryIo, MagicSniffDistinguishesFormats) {
  Graph g(3, {{0, 1}});
  TempPath binary;
  ASSERT_TRUE(SaveBinaryEdgeList(g, binary.path()));
  EXPECT_TRUE(IsBinaryEdgeList(binary.path()));
  TempPath text("0 1\n1 2\n");
  EXPECT_FALSE(IsBinaryEdgeList(text.path()));
  EXPECT_FALSE(IsBinaryEdgeList("/nonexistent/file.cpge"));
}

TEST(BinaryIo, HeaderCorruptionIsRejected) {
  Graph g(4, {{0, 1}, {2, 3}});
  TempPath file;
  ASSERT_TRUE(SaveBinaryEdgeList(g, file.path()));
  std::string bytes = Slurp(file.path());
  bytes[10] ^= 0x40;  // inside num_nodes; header CRC must catch it
  Spill(file.path(), bytes);
  LoadResult loaded = LoadBinaryEdgeListDetailed(file.path());
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error.find("header checksum"), std::string::npos)
      << loaded.error;
}

TEST(BinaryIo, PayloadCorruptionIsRejected) {
  Graph g(4, {{0, 1}, {2, 3}});
  TempPath file;
  ASSERT_TRUE(SaveBinaryEdgeList(g, file.path()));
  std::string bytes = Slurp(file.path());
  bytes[kBinaryEdgeListHeaderBytes + 3] ^= 0x01;
  Spill(file.path(), bytes);
  LoadResult loaded = LoadBinaryEdgeListDetailed(file.path());
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error.find("payload checksum"), std::string::npos)
      << loaded.error;
}

TEST(BinaryIo, TruncationIsRejectedBeforeTheCrc) {
  Graph g(4, {{0, 1}, {2, 3}});
  TempPath file;
  ASSERT_TRUE(SaveBinaryEdgeList(g, file.path()));
  std::string bytes = Slurp(file.path());
  Spill(file.path(), bytes.substr(0, bytes.size() - 4));
  LoadResult loaded = LoadBinaryEdgeListDetailed(file.path());
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error.find("size mismatch"), std::string::npos)
      << loaded.error;
}

TEST(BinaryIo, UnsupportedVersionIsRejected) {
  // Hand-craft a header with version 99 and a *valid* header CRC, so the
  // version check (not the checksum) must reject it.
  uint8_t header[kBinaryEdgeListHeaderBytes];
  internal::EncodeBinaryHeader(2, 0, util::Crc32Of("", 0), header);
  uint32_t version = 99;
  std::memcpy(header + 4, &version, 4);
  uint32_t header_crc = util::Crc32Of(header, 28);
  std::memcpy(header + 28, &header_crc, 4);
  TempPath file(std::string(reinterpret_cast<char*>(header), sizeof(header)));
  LoadResult loaded = LoadBinaryEdgeListDetailed(file.path());
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error.find("version"), std::string::npos) << loaded.error;
}

TEST(BinaryIo, NonCanonicalPayloadIsRejected) {
  auto write_payload = [](const std::vector<uint32_t>& words,
                          uint64_t num_nodes, const std::string& path) {
    std::string payload(reinterpret_cast<const char*>(words.data()),
                        words.size() * sizeof(uint32_t));
    uint8_t header[kBinaryEdgeListHeaderBytes];
    internal::EncodeBinaryHeader(num_nodes, words.size() / 2,
                                 util::Crc32Of(payload.data(), payload.size()),
                                 header);
    Spill(path,
          std::string(reinterpret_cast<char*>(header), sizeof(header)) +
              payload);
  };
  TempPath file;
  // u > v (non-canonical).
  write_payload({2, 1}, 3, file.path());
  EXPECT_FALSE(LoadBinaryEdgeListDetailed(file.path()).ok());
  // Self-loop.
  write_payload({1, 1}, 3, file.path());
  EXPECT_FALSE(LoadBinaryEdgeListDetailed(file.path()).ok());
  // Out-of-range id.
  write_payload({0, 7}, 3, file.path());
  EXPECT_FALSE(LoadBinaryEdgeListDetailed(file.path()).ok());
  // Duplicate record.
  write_payload({0, 1, 0, 1}, 3, file.path());
  LoadResult dup = LoadBinaryEdgeListDetailed(file.path());
  EXPECT_FALSE(dup.ok());
  EXPECT_NE(dup.error.find("duplicate"), std::string::npos) << dup.error;
}

TEST(BinaryIo, BudgetGateRejectsOversizedCsrUpFront) {
  Graph g(1000, {{0, 1}, {1, 2}, {2, 3}});
  TempPath file;
  ASSERT_TRUE(SaveBinaryEdgeList(g, file.path()));
  util::MemoryTracker::Global().SetBudgetBytes(1 << 10);  // 1 KiB
  LoadResult loaded = LoadBinaryEdgeListDetailed(file.path());
  util::MemoryTracker::Global().SetBudgetBytes(0);
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error.find("memory budget"), std::string::npos)
      << loaded.error;
  // With the budget lifted the same file loads fine.
  EXPECT_TRUE(LoadBinaryEdgeListDetailed(file.path()).ok());
}

TEST(BinaryIo, InjectedWriteFailurePropagates) {
  Graph g(3, {{0, 1}});
  TempPath file("sentinel");
  util::InjectAtomicWriteFailures(1);
  EXPECT_FALSE(SaveBinaryEdgeList(g, file.path()));
  // Atomic replacement: the old contents must survive a failed write.
  EXPECT_EQ(Slurp(file.path()), "sentinel");
  util::InjectAtomicWriteFailures(0);
  EXPECT_TRUE(SaveBinaryEdgeList(g, file.path()));
}

TEST(BinaryIo, StreamingWriterMatchesConverterByteForByte) {
  // The O(1)-memory streaming writer and the text->binary converter must
  // produce the identical file for the same graph: same records, same
  // order, same CRCs.
  data::RingChordSpec spec;
  spec.num_nodes = 200;
  spec.chords = 3;
  spec.seed = 9;
  TempPath text, streamed, converted;
  ASSERT_TRUE(data::WriteRingChordText(spec, text.path()));
  ASSERT_TRUE(data::WriteRingChordBinary(spec, streamed.path()));
  ConvertResult result =
      ConvertEdgeListToBinary(text.path(), converted.path());
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.num_edges, data::RingChordEdgeCount(spec));
  EXPECT_EQ(result.total_skipped(), 0);
  EXPECT_EQ(Slurp(streamed.path()), Slurp(converted.path()));
}

}  // namespace
}  // namespace cpgan::graph
