#include <cmath>

#include <gtest/gtest.h>

#include "core/assembly.h"
#include "core/decoder.h"
#include "core/sampler.h"
#include "core/variational.h"
#include "tests/test_util.h"

namespace cpgan::core {
namespace {

namespace t = cpgan::tensor;
using cpgan::testing::TestMatrix;

TEST(VariationalTest, ShapesAndNonNegativeKl) {
  util::Rng rng(1);
  VariationalInference vae(6, 8, 4, rng);
  std::vector<t::Tensor> z_rec = {t::Constant(TestMatrix(10, 6, 1.0f, 1)),
                                  t::Constant(TestMatrix(10, 6, 1.0f, 2))};
  VariationalOutput out = vae.Forward(z_rec, rng, /*sample=*/true);
  ASSERT_EQ(out.z_vae.size(), 2u);
  EXPECT_EQ(out.z_vae[0].rows(), 10);
  EXPECT_EQ(out.z_vae[0].cols(), 4);
  // KL to the prior is non-negative by definition.
  EXPECT_GE(out.kl.Scalar(), -1e-4f);
}

TEST(VariationalTest, DeterministicModeReturnsMeans) {
  util::Rng rng(2);
  VariationalInference vae(6, 8, 4, rng);
  std::vector<t::Tensor> z_rec = {t::Constant(TestMatrix(5, 6, 1.0f, 3))};
  util::Rng sample_rng_a(7);
  util::Rng sample_rng_b(8);
  VariationalOutput a = vae.Forward(z_rec, sample_rng_a, /*sample=*/false);
  VariationalOutput b = vae.Forward(z_rec, sample_rng_b, /*sample=*/false);
  t::Matrix diff = a.z_vae[0].value();
  diff.Axpy(-1.0f, b.z_vae[0].value());
  EXPECT_FLOAT_EQ(diff.Norm(), 0.0f);
}

TEST(VariationalTest, SamplingAddsSharedVarianceNoise) {
  util::Rng rng(3);
  VariationalInference vae(6, 8, 4, rng);
  std::vector<t::Tensor> z_rec = {t::Constant(TestMatrix(5, 6, 1.0f, 4))};
  util::Rng sample_rng(9);
  VariationalOutput mean = vae.Forward(z_rec, sample_rng, /*sample=*/false);
  VariationalOutput sampled = vae.Forward(z_rec, sample_rng, /*sample=*/true);
  t::Matrix diff = sampled.z_vae[0].value();
  diff.Axpy(-1.0f, mean.z_vae[0].value());
  EXPECT_GT(diff.Norm(), 0.0f);
}

TEST(GraphDecoderTest, GruAndConcatShapes) {
  util::Rng rng(4);
  for (bool concat : {false, true}) {
    GraphDecoder decoder(4, 8, 2, concat, rng);
    std::vector<t::Tensor> z = {t::Constant(TestMatrix(7, 4, 1.0f, 5)),
                                t::Constant(TestMatrix(7, 4, 1.0f, 6))};
    t::Tensor h = decoder.DecodeNodes(z);
    EXPECT_EQ(h.rows(), 7);
    EXPECT_EQ(h.cols(), 8);
    t::Tensor logits = decoder.EdgeLogits(h);
    EXPECT_EQ(logits.rows(), 7);
    EXPECT_EQ(logits.cols(), 7);
  }
}

TEST(GraphDecoderTest, LogitsSymmetric) {
  util::Rng rng(5);
  GraphDecoder decoder(4, 8, 1, false, rng);
  std::vector<t::Tensor> z = {t::Constant(TestMatrix(6, 4, 1.0f, 7))};
  t::Matrix logits = decoder.EdgeLogits(decoder.DecodeNodes(z)).value();
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      EXPECT_NEAR(logits.At(i, j), logits.At(j, i), 1e-4f);
    }
  }
}

TEST(GraphDecoderTest, EdgeBiasShiftsLogits) {
  util::Rng rng(6);
  GraphDecoder decoder(4, 8, 1, false, rng);
  EXPECT_NEAR(decoder.edge_bias(), -3.0f, 1e-6f);
}

TEST(AssemblyTest, OracleScorerRecoversGraph) {
  // Scorer returns 1 on true edges, 0 elsewhere -> assembly must rebuild
  // exactly the target edges.
  int n = 30;
  std::vector<graph::Edge> edges;
  for (int i = 0; i + 1 < n; i += 2) edges.emplace_back(i, i + 1);
  graph::Graph target(n, edges);
  auto scorer = [&target](const std::vector<int>& ids) {
    t::Matrix probs(static_cast<int>(ids.size()),
                    static_cast<int>(ids.size()));
    for (size_t a = 0; a < ids.size(); ++a) {
      for (size_t b = 0; b < ids.size(); ++b) {
        if (a != b && target.HasEdge(ids[a], ids[b])) {
          probs.At(static_cast<int>(a), static_cast<int>(b)) = 1.0f;
        } else {
          probs.At(static_cast<int>(a), static_cast<int>(b)) = 1e-4f;
        }
      }
    }
    return probs;
  };
  util::Rng rng(7);
  AssemblyOptions options;
  options.subgraph_size = n;  // single-shot decode
  graph::Graph out =
      AssembleGraph(n, target.num_edges(), scorer, options, rng);
  EXPECT_EQ(out.num_edges(), target.num_edges());
  for (const auto& [u, v] : target.Edges()) {
    EXPECT_TRUE(out.HasEdge(u, v));
  }
}

TEST(AssemblyTest, RespectsEdgeBudget) {
  auto scorer = [](const std::vector<int>& ids) {
    return t::Matrix(static_cast<int>(ids.size()),
                     static_cast<int>(ids.size()), 0.5f);
  };
  util::Rng rng(8);
  AssemblyOptions options;
  options.subgraph_size = 16;
  graph::Graph out = AssembleGraph(50, 60, scorer, options, rng);
  EXPECT_LE(out.num_edges(), 60);
  EXPECT_GE(out.num_edges(), 30);
}

TEST(AssemblyTest, SubgraphChunkingCoversAllNodes) {
  // Uniform scores with chunked decoding: after several passes most nodes
  // should have at least one edge thanks to the per-node categorical step.
  auto scorer = [](const std::vector<int>& ids) {
    return t::Matrix(static_cast<int>(ids.size()),
                     static_cast<int>(ids.size()), 0.3f);
  };
  util::Rng rng(9);
  AssemblyOptions options;
  options.subgraph_size = 20;
  graph::Graph out = AssembleGraph(100, 300, scorer, options, rng);
  int isolated = 0;
  for (int v = 0; v < out.num_nodes(); ++v) {
    if (out.degree(v) == 0) ++isolated;
  }
  EXPECT_LT(isolated, 10);
}

TEST(AssemblyTest, EmptyCases) {
  auto scorer = [](const std::vector<int>& ids) {
    return t::Matrix(static_cast<int>(ids.size()),
                     static_cast<int>(ids.size()), 0.5f);
  };
  util::Rng rng(10);
  AssemblyOptions options;
  EXPECT_EQ(AssembleGraph(0, 0, scorer, options, rng).num_nodes(), 0);
  EXPECT_EQ(AssembleGraph(5, 0, scorer, options, rng).num_edges(), 0);
  EXPECT_EQ(AssembleGraph(1, 3, scorer, options, rng).num_edges(), 0);
}

TEST(SamplerTest, DegreeProportionalPrefersHubs) {
  // Star graph: the hub must be selected almost always.
  std::vector<graph::Edge> edges;
  for (int i = 1; i < 50; ++i) edges.emplace_back(0, i);
  graph::Graph g(50, edges);
  util::Rng rng(11);
  int hub_hits = 0;
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<int> sample = DegreeProportionalSample(g, 10, rng);
    EXPECT_EQ(sample.size(), 10u);
    EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
    if (std::binary_search(sample.begin(), sample.end(), 0)) ++hub_hits;
  }
  EXPECT_GT(hub_hits, 95);
}

TEST(SamplerTest, HandlesEdgelessGraph) {
  graph::Graph g(20);
  util::Rng rng(12);
  std::vector<int> sample = DegreeProportionalSample(g, 5, rng);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(SamplerTest, UniformSampleBounds) {
  util::Rng rng(13);
  std::vector<int> sample = UniformNodeSample(10, 20, rng);
  EXPECT_EQ(sample.size(), 10u);  // clamped to n
}

}  // namespace
}  // namespace cpgan::core

namespace cpgan::core {
namespace {

TEST(AssemblyTest, ProportionalFillFollowsDensities) {
  // Two blocks: intra-block probability 0.6, cross 0.05. Proportional fill
  // must place most edges inside blocks.
  int n = 40;
  auto scorer = [n](const std::vector<int>& ids) {
    tensor::Matrix probs(static_cast<int>(ids.size()),
                         static_cast<int>(ids.size()));
    for (size_t a = 0; a < ids.size(); ++a) {
      for (size_t b = 0; b < ids.size(); ++b) {
        if (a == b) continue;
        bool same_block = (ids[a] < n / 2) == (ids[b] < n / 2);
        probs.At(static_cast<int>(a), static_cast<int>(b)) =
            same_block ? 0.6f : 0.05f;
      }
    }
    return probs;
  };
  util::Rng rng(31);
  AssemblyOptions options;
  options.subgraph_size = n;
  options.proportional_fill = true;
  graph::Graph out = AssembleGraph(n, 120, scorer, options, rng);
  int64_t intra = 0;
  for (const auto& [u, v] : out.Edges()) {
    if ((u < n / 2) == (v < n / 2)) ++intra;
  }
  EXPECT_GT(static_cast<double>(intra) / out.num_edges(), 0.6);
}

TEST(AssemblyTest, TopKFillDeterministicallyPicksHighest) {
  // With distinct scores and no categorical noise possible (quota covers
  // everything), top-k fill must select exactly the highest-score pairs.
  auto scorer = [](const std::vector<int>& ids) {
    tensor::Matrix probs(static_cast<int>(ids.size()),
                         static_cast<int>(ids.size()));
    for (size_t a = 0; a < ids.size(); ++a) {
      for (size_t b = 0; b < ids.size(); ++b) {
        if (a == b) continue;
        // Pair (0,1) highest, then (0,2), ...
        probs.At(static_cast<int>(a), static_cast<int>(b)) =
            1.0f / (1.0f + ids[a] + ids[b]);
      }
    }
    return probs;
  };
  util::Rng rng(32);
  AssemblyOptions options;
  options.subgraph_size = 10;
  options.proportional_fill = false;
  graph::Graph out = AssembleGraph(10, 3, scorer, options, rng);
  EXPECT_TRUE(out.HasEdge(0, 1));
}

TEST(AssemblyTest, ProportionalFillKeepsRatesForTinyProbabilities) {
  // Regression for the Efraimidis-Spirakis key underflow: with
  // probabilities near the 1e-9 clamp, float pow(u, 1/p) collapses every
  // key to 0.0f and the "proportional" fill degenerates into arbitrary
  // tie-breaking. The log-space keys must keep selecting pairs at their
  // proportional rate, so pairs with p = 2e-8 are picked ~2x as often as
  // pairs with p = 1e-8.
  const int n = 24;
  auto scorer = [](const std::vector<int>& ids) {
    const int k = static_cast<int>(ids.size());
    tensor::Matrix probs(k, k);
    for (int a = 0; a < k; ++a) {
      for (int b = 0; b < k; ++b) {
        if (a == b) continue;
        int u = std::min(ids[a], ids[b]);
        int v = std::max(ids[a], ids[b]);
        if (v == u + 1 && u % 2 == 0) {
          // Anchor pairs soak up step 1's per-node categorical draw so the
          // quota fill below operates purely on the tiny probabilities.
          probs.At(a, b) = 0.9f;
        } else {
          probs.At(a, b) = (u + v) % 2 == 0 ? 2e-8f : 1e-8f;
        }
      }
    }
    return probs;
  };
  const int anchors = n / 2;
  int64_t special_pairs = 0;
  int64_t base_pairs = 0;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (v == u + 1 && u % 2 == 0) continue;
      ((u + v) % 2 == 0 ? special_pairs : base_pairs) += 1;
    }
  }
  AssemblyOptions options;
  options.subgraph_size = n;  // single chunk: no shuffle noise
  options.proportional_fill = true;
  util::Rng rng(101);
  int64_t special_hits = 0;
  int64_t base_hits = 0;
  const int trials = 400;
  for (int trial = 0; trial < trials; ++trial) {
    graph::Graph out = AssembleGraph(n, anchors + 40, scorer, options, rng);
    for (const auto& [u, v] : out.Edges()) {
      if (v == u + 1 && u % 2 == 0) continue;
      ((u + v) % 2 == 0 ? special_hits : base_hits) += 1;
    }
  }
  double special_rate =
      static_cast<double>(special_hits) / (special_pairs * trials);
  double base_rate = static_cast<double>(base_hits) / (base_pairs * trials);
  ASSERT_GT(base_rate, 0.0);
  // Exactly 2 minus a little without-replacement attenuation (40 draws
  // from 264 pairs). The underflow bug yields a ratio near 1.
  EXPECT_GT(special_rate / base_rate, 1.6);
  EXPECT_LT(special_rate / base_rate, 2.4);
}

TEST(AssemblyTest, AbortedFlagResetsWhenOptionsAreReused) {
  // Regression: `aborted` used to keep its stale true across runs, so a
  // reused options struct reported phantom aborts.
  auto scorer = [](const std::vector<int>& ids) {
    const int k = static_cast<int>(ids.size());
    return tensor::Matrix(k, k, 0.5f);
  };
  util::Rng rng(33);
  AssemblyOptions options;
  options.subgraph_size = 8;
  bool aborted = false;
  options.aborted = &aborted;
  options.should_abort = [] { return true; };
  AssembleGraph(40, 100, scorer, options, rng);
  EXPECT_TRUE(aborted);
  options.should_abort = [] { return false; };
  graph::Graph out = AssembleGraph(40, 100, scorer, options, rng);
  EXPECT_FALSE(aborted);
  EXPECT_GT(out.num_edges(), 0);
}

}  // namespace
}  // namespace cpgan::core
