// Sampler suite (core/sampler.h): the relative isolated-node floor pin for
// DegreeProportionalSample (the absolute-0.01 bug), statistical selection
// behavior, sensitivity-coreset unbiasedness, and the coreset + RAM-budget
// plumbing through Cpgan::Fit (--coreset-size / --mem-budget-mb).

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/cpgan.h"
#include "core/losses.h"
#include "core/sampler.h"
#include "tensor/ops.h"
#include "data/synthetic.h"
#include "graph/graph.h"
#include "util/memory_tracker.h"
#include "util/rng.h"

namespace cpgan::core {
namespace {

// Bug pin: the isolated-node weight used to be the absolute constant 0.01,
// so an isolated node's selection odds versus a minimum-degree node changed
// with the graph's degree scale. The floor is now a fixed *fraction* of the
// minimum positive degree.
TEST(DegreeWeights, IsolatedFloorScalesWithMinimumPositiveDegree) {
  // Graph A: min positive degree 1 (node 2); node 3 isolated.
  graph::Graph a(4, {{0, 1}, {0, 2}});
  std::vector<double> wa = DegreeSampleWeights(a);
  EXPECT_DOUBLE_EQ(wa[3], kIsolatedFloorFraction * 1.0);
  // Graph B: same shape, every edge tripled via extra neighbors -> min
  // positive degree 3; the isolated node's weight scales with it.
  graph::Graph b(8, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 4},
                     {3, 4}, {4, 5}, {5, 6}, {5, 0}, {6, 1}, {6, 2}});
  ASSERT_EQ(b.degree(7), 0);
  int min_positive = b.num_nodes();
  for (int v = 0; v < b.num_nodes(); ++v) {
    if (b.degree(v) > 0) min_positive = std::min(min_positive, b.degree(v));
  }
  std::vector<double> wb = DegreeSampleWeights(b);
  EXPECT_DOUBLE_EQ(wb[7], kIsolatedFloorFraction * min_positive);
  // The scale-invariant: isolated weight / min-positive weight is the same
  // constant on both graphs.
  EXPECT_DOUBLE_EQ(wa[3] / 1.0, kIsolatedFloorFraction);
  EXPECT_DOUBLE_EQ(wb[7] / min_positive, kIsolatedFloorFraction);
  // Connected nodes keep plain degree weights.
  EXPECT_DOUBLE_EQ(wa[0], 2.0);
  EXPECT_DOUBLE_EQ(wa[1], 1.0);
}

TEST(DegreeWeights, AllIsolatedFallsBackToUniform) {
  graph::Graph g(5, {});
  std::vector<double> weights = DegreeSampleWeights(g);
  for (double w : weights) EXPECT_DOUBLE_EQ(w, 1.0);
}

// Statistical pin: in a graph where node 0 has degree d and node 1 is
// isolated, the isolated node should be selected about
// kIsolatedFloorFraction times as often as a *minimum-degree* node —
// regardless of d's absolute scale. With the old absolute floor, doubling
// every degree halved the isolated node's selection rate.
TEST(DegreeWeights, IsolatedSelectionRateTracksMinimumDegree) {
  auto isolated_rate = [](int scale) {
    // Nodes 0..9 connected with degree ~2*scale each, node 10 isolated.
    std::vector<graph::Edge> edges;
    for (int r = 0; r < scale; ++r) {
      for (int i = 0; i < 10; ++i) {
        edges.push_back({i, (i + 1 + r) % 10});
      }
    }
    graph::Graph g(11, edges);
    util::Rng rng(123);
    int hits = 0;
    const int kTrials = 20000;
    for (int t = 0; t < kTrials; ++t) {
      std::vector<int> sample = DegreeProportionalSample(g, 1, rng);
      if (sample[0] == 10) ++hits;
    }
    return static_cast<double>(hits) / kTrials;
  };
  const double rate_1x = isolated_rate(1);
  const double rate_3x = isolated_rate(3);
  // Expected rate = floor / (sum of weights) ~= 0.01 * min_deg / (2m + ...):
  // identical for both scales because floor and degrees scale together.
  EXPECT_GT(rate_1x, 0.0);
  ASSERT_GT(rate_3x, 0.0);
  EXPECT_NEAR(rate_1x / rate_3x, 1.0, 0.75);
  // Sanity: the absolute-floor behavior would give rate_3x ~ rate_1x / 3;
  // a ratio this close to 1 rules it out at these trial counts.
}

TEST(Coreset, NodesAreSortedDistinctAndWithinBound) {
  data::CommunityGraphParams params;
  params.num_nodes = 300;
  params.num_edges = 900;
  params.num_communities = 4;
  util::Rng graph_rng(5);
  graph::Graph g = data::MakeCommunityGraph(params, graph_rng);
  util::Rng rng(17);
  CoresetSample coreset = SensitivityCoresetSample(g, 64, rng);
  ASSERT_LE(coreset.size(), 64u);
  ASSERT_GT(coreset.size(), 0u);
  ASSERT_EQ(coreset.nodes.size(), coreset.weights.size());
  for (size_t i = 1; i < coreset.nodes.size(); ++i) {
    EXPECT_LT(coreset.nodes[i - 1], coreset.nodes[i]);
  }
  for (double w : coreset.weights) EXPECT_GT(w, 0.0);
}

// The importance weights must make coreset sums unbiased: averaging
// sum_i w_i * deg_i over many independent coresets converges to the full
// graph's total degree.
TEST(Coreset, WeightedDegreeSumIsUnbiased) {
  data::CommunityGraphParams params;
  params.num_nodes = 200;
  params.num_edges = 800;
  params.num_communities = 4;
  util::Rng graph_rng(3);
  graph::Graph g = data::MakeCommunityGraph(params, graph_rng);
  const double exact = 2.0 * static_cast<double>(g.num_edges());
  util::Rng rng(29);
  double sum = 0.0;
  const int kReps = 600;
  for (int rep = 0; rep < kReps; ++rep) {
    CoresetSample coreset = SensitivityCoresetSample(g, 32, rng);
    double estimate = 0.0;
    for (size_t i = 0; i < coreset.size(); ++i) {
      estimate += coreset.weights[i] * g.degree(coreset.nodes[i]);
    }
    sum += estimate;
  }
  EXPECT_NEAR(sum / kReps / exact, 1.0, 0.05);
}

TEST(Coreset, EdgelessGraphFallsBackToUniformHorvitzThompson) {
  graph::Graph g(50, {});
  util::Rng rng(7);
  CoresetSample coreset = SensitivityCoresetSample(g, 10, rng);
  ASSERT_EQ(coreset.size(), 10u);
  for (double w : coreset.weights) EXPECT_DOUBLE_EQ(w, 5.0);  // n / count
}

TEST(CoresetTraining, FitOnCoresetReportsSizeAndTrains) {
  data::CommunityGraphParams params;
  params.num_nodes = 400;
  params.num_edges = 1600;
  params.num_communities = 5;
  util::Rng graph_rng(11);
  graph::Graph g = data::MakeCommunityGraph(params, graph_rng);
  CpganConfig config;
  config.epochs = 4;
  config.subgraph_size = 48;
  config.coreset_size = 96;
  config.seed = 13;
  Cpgan model(config);
  TrainStats stats = model.Fit(g);
  EXPECT_TRUE(model.trained());
  EXPECT_GT(stats.coreset_nodes, 0);
  EXPECT_LE(stats.coreset_nodes, 96);
  EXPECT_FALSE(stats.budget_exceeded);
  // Generation still targets the observed (coreset) size and succeeds.
  graph::Graph generated = model.Generate();
  EXPECT_EQ(generated.num_nodes(), stats.coreset_nodes);
}

TEST(CoresetTraining, CoresetLargerThanGraphIsIgnored) {
  data::CommunityGraphParams params;
  params.num_nodes = 60;
  params.num_edges = 180;
  params.num_communities = 3;
  util::Rng graph_rng(2);
  graph::Graph g = data::MakeCommunityGraph(params, graph_rng);
  CpganConfig config;
  config.epochs = 2;
  config.subgraph_size = 32;
  config.coreset_size = 1000;  // >= n: full-graph training
  config.seed = 3;
  Cpgan model(config);
  TrainStats stats = model.Fit(g);
  EXPECT_EQ(stats.coreset_nodes, 0);
}

// ----- Importance-weighted coreset losses (core/losses.h): the weights
// SensitivityCoresetSample computes must actually enter the loss, and the
// weighted estimators must be unbiased for the full-graph terms. -----

TEST(WeightedLosses, UnitWeightsReduceToUnweightedForms) {
  util::Rng rng(41);
  const int n = 12;
  const int c = 3;
  tensor::Matrix raw(n, c);
  raw.FillNormal(rng, 1.0f);
  std::vector<int> y(n);
  for (int i = 0; i < n; ++i) y[i] = i % c;
  std::vector<float> ones(n, 1.0f);

  tensor::Tensor s = tensor::SoftmaxRows(tensor::Constant(raw));
  float plain = AssignmentNll(s, y).Scalar();
  float weighted =
      WeightedAssignmentNll(s, y, ones, 1.0f / static_cast<float>(n))
          .Scalar();
  EXPECT_EQ(plain, weighted);  // same graph, same summation: bitwise

  tensor::Matrix logits(n, n);
  logits.FillNormal(rng, 1.0f);
  tensor::Matrix targets(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) targets.At(i, j) = (i + j) % 3 == 0;
  }
  float bce =
      tensor::BceWithLogits(tensor::Constant(logits), targets, 2.0f).Scalar();
  float wbce = WeightedBceWithLogits(
                   tensor::Constant(logits), targets, ones, 2.0f,
                   1.0f / static_cast<float>(n) / static_cast<float>(n))
                   .Scalar();
  EXPECT_NEAR(wbce, bce, 1e-5f * std::abs(bce) + 1e-6f);
}

TEST(WeightedLosses, CoresetGradientIsUnbiasedForFullGraphGradient) {
  // Skewed fixture: a hub makes the sensitivity distribution non-uniform,
  // so dropping the importance weights (the original bug: computed but
  // never used) would bias the estimator toward high-degree nodes.
  const int n = 40;
  const int c = 4;
  std::vector<graph::Edge> edges;
  for (int v = 1; v < n; ++v) edges.emplace_back(0, v);
  for (int v = 1; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  graph::Graph g(n, edges);

  util::Rng init_rng(7);
  tensor::Matrix raw(n, c);
  raw.FillNormal(init_rng, 1.0f);
  std::vector<int> y(n);
  for (int i = 0; i < n; ++i) y[i] = i % c;

  // Full-graph reference gradient.
  tensor::Tensor param_full(raw, /*requires_grad=*/true);
  tensor::Backward(AssignmentNll(tensor::SoftmaxRows(param_full), y));
  tensor::Matrix g_full = param_full.grad();
  ASSERT_GT(g_full.Norm(), 0.0f);

  // Averaged coreset gradient: batch = the whole coreset, so the training
  // loop's normalizer n_full * (batch / coreset) collapses to n_full.
  tensor::Matrix g_acc(n, c);
  util::Rng rng(21);
  const int reps = 600;
  for (int rep = 0; rep < reps; ++rep) {
    CoresetSample cs = SensitivityCoresetSample(g, 16, rng);
    std::vector<int> y_sub(cs.nodes.size());
    std::vector<float> w(cs.nodes.size());
    for (size_t i = 0; i < cs.nodes.size(); ++i) {
      y_sub[i] = y[cs.nodes[i]];
      w[i] = static_cast<float>(cs.weights[i]);
    }
    tensor::Tensor param(raw, /*requires_grad=*/true);
    tensor::Tensor sub =
        tensor::GatherRows(tensor::SoftmaxRows(param), cs.nodes);
    tensor::Backward(WeightedAssignmentNll(
        sub, y_sub, w, 1.0f / static_cast<float>(n)));
    g_acc.Axpy(1.0f, param.grad());
  }
  g_acc.Scale(1.0f / static_cast<float>(reps));

  tensor::Matrix diff = g_acc;
  diff.Axpy(-1.0f, g_full);
  EXPECT_LT(diff.Norm() / g_full.Norm(), 0.2f)
      << "averaged coreset gradient drifted from the full-graph gradient";
}

TEST(CoresetTraining, BudgetExceededIsReportedNotFatal) {
  data::CommunityGraphParams params;
  params.num_nodes = 200;
  params.num_edges = 700;
  params.num_communities = 4;
  util::Rng graph_rng(19);
  graph::Graph g = data::MakeCommunityGraph(params, graph_rng);
  CpganConfig config;
  config.epochs = 2;
  config.subgraph_size = 64;
  config.mem_budget_mb = 1;  // far below any real training peak
  config.seed = 23;
  Cpgan model(config);
  TrainStats stats = model.Fit(g);
  util::MemoryTracker::Global().SetBudgetBytes(0);
  EXPECT_TRUE(model.trained());
  EXPECT_TRUE(stats.budget_exceeded);
  EXPECT_GT(stats.peak_bytes, int64_t{1} << 20);
}

}  // namespace
}  // namespace cpgan::core
