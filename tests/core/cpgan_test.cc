#include <gtest/gtest.h>

#include <cstdio>
#include "core/cpgan.h"
#include "data/synthetic.h"
#include "eval/community_eval.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace cpgan::core {
namespace {

graph::Graph SmallCommunityGraph(uint64_t seed = 3) {
  data::CommunityGraphParams params;
  params.num_nodes = 120;
  params.num_edges = 420;
  params.num_communities = 6;
  params.intra_fraction = 0.92;
  params.degree_exponent = 2.6;
  util::Rng rng(seed);
  return data::MakeCommunityGraph(params, rng);
}

CpganConfig FastConfig() {
  CpganConfig config;
  config.epochs = 25;
  config.subgraph_size = 80;
  config.hidden_dim = 16;
  config.latent_dim = 8;
  config.feature_dim = 6;
  config.seed = 11;
  return config;
}

TEST(CpganTest, TrainsAndGeneratesMatchingSize) {
  graph::Graph observed = SmallCommunityGraph();
  Cpgan model(FastConfig());
  TrainStats stats = model.Fit(observed);
  EXPECT_EQ(static_cast<int>(stats.g_loss.size()), 25);
  EXPECT_TRUE(model.trained());
  graph::Graph generated = model.Generate();
  EXPECT_EQ(generated.num_nodes(), observed.num_nodes());
  // Assembly targets the observed edge count (it may stop slightly short).
  EXPECT_GT(generated.num_edges(), observed.num_edges() / 2);
  EXPECT_LE(generated.num_edges(), observed.num_edges());
}

TEST(CpganTest, LossesAreFinite) {
  graph::Graph observed = SmallCommunityGraph();
  Cpgan model(FastConfig());
  TrainStats stats = model.Fit(observed);
  for (float loss : stats.d_loss) EXPECT_TRUE(std::isfinite(loss));
  for (float loss : stats.g_loss) EXPECT_TRUE(std::isfinite(loss));
  for (float loss : stats.clus_loss) EXPECT_TRUE(std::isfinite(loss));
}

TEST(CpganTest, ReconstructionLossDecreases) {
  graph::Graph observed = SmallCommunityGraph();
  CpganConfig config = FastConfig();
  config.epochs = 60;
  Cpgan model(config);
  TrainStats stats = model.Fit(observed);
  // Compare mean generator loss over the first vs last 10 epochs.
  double early = 0.0;
  double late = 0.0;
  for (int i = 0; i < 10; ++i) {
    early += stats.g_loss[i];
    late += stats.g_loss[stats.g_loss.size() - 1 - i];
  }
  EXPECT_LT(late, early);
}

TEST(CpganTest, GenerateWithSizeProducesRequestedShape) {
  graph::Graph observed = SmallCommunityGraph();
  Cpgan model(FastConfig());
  model.Fit(observed);
  graph::Graph generated = model.GenerateWithSize(60, 150);
  EXPECT_EQ(generated.num_nodes(), 60);
  EXPECT_LE(generated.num_edges(), 150);
}

TEST(CpganTest, EdgeProbabilitiesSeparatePositivesFromNegatives) {
  graph::Graph observed = SmallCommunityGraph();
  CpganConfig config = FastConfig();
  config.epochs = 80;
  Cpgan model(config);
  model.Fit(observed);
  std::vector<graph::Edge> positives = observed.Edges();
  positives.resize(std::min<size_t>(positives.size(), 100));
  std::vector<graph::Edge> negatives;
  util::Rng rng(5);
  while (negatives.size() < 100) {
    int u = static_cast<int>(rng.UniformInt(observed.num_nodes()));
    int v = static_cast<int>(rng.UniformInt(observed.num_nodes()));
    if (u == v || observed.HasEdge(u, v)) continue;
    negatives.emplace_back(u, v);
  }
  std::vector<double> p_pos = model.EdgeProbabilities(positives);
  std::vector<double> p_neg = model.EdgeProbabilities(negatives);
  double mean_pos = 0.0;
  double mean_neg = 0.0;
  for (double p : p_pos) mean_pos += p;
  for (double p : p_neg) mean_neg += p;
  mean_pos /= p_pos.size();
  mean_neg /= p_neg.size();
  EXPECT_GT(mean_pos, mean_neg);
}

TEST(CpganTest, AblationVariantsTrain) {
  graph::Graph observed = SmallCommunityGraph();
  for (int variant = 0; variant < 3; ++variant) {
    CpganConfig config = FastConfig();
    config.epochs = 10;
    if (variant == 0) config.concat_decoder = true;     // CPGAN-C
    if (variant == 1) config.use_variational = false;   // CPGAN-noV
    if (variant == 2) config.use_hierarchy = false;     // CPGAN-noH
    Cpgan model(config);
    TrainStats stats = model.Fit(observed);
    EXPECT_TRUE(std::isfinite(stats.g_loss.back()));
    graph::Graph generated = model.Generate();
    EXPECT_EQ(generated.num_nodes(), observed.num_nodes());
  }
}

TEST(CpganTest, PreservesCommunityStructureBetterThanNoise) {
  graph::Graph observed = SmallCommunityGraph();
  CpganConfig config = FastConfig();
  config.epochs = 120;
  Cpgan model(config);
  model.Fit(observed);
  graph::Graph generated = model.Generate();
  util::Rng rng(9);
  eval::CommunityMetrics metrics =
      eval::EvaluateCommunityPreservation(observed, generated, rng);
  // A random graph scores ~0 NMI; the trained model must beat that clearly.
  EXPECT_GT(metrics.nmi, 0.15);
}

}  // namespace
}  // namespace cpgan::core

namespace cpgan::core {
namespace {

TEST(CpganTest, SaveLoadWeightsRoundTrip) {
  graph::Graph observed = SmallCommunityGraph(4);
  CpganConfig config = FastConfig();
  config.epochs = 15;
  Cpgan model(config);
  model.Fit(observed);
  std::string path = ::testing::TempDir() + "/cpgan_weights.bin";
  ASSERT_TRUE(model.SaveWeights(path));

  // Second model with the same architecture; after loading, its edge
  // probabilities must match the original's exactly.
  Cpgan clone(config);
  clone.Fit(observed);  // builds the architecture (and trains briefly)
  ASSERT_TRUE(clone.LoadWeights(path));
  std::vector<graph::Edge> pairs = observed.Edges();
  pairs.resize(std::min<size_t>(pairs.size(), 30));
  std::vector<double> original = model.EdgeProbabilities(pairs);
  std::vector<double> restored = clone.EdgeProbabilities(pairs);
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_NEAR(original[i], restored[i], 1e-5);
  }
  std::remove(path.c_str());
}

TEST(CpganTest, LoadRejectsMismatchedArchitecture) {
  graph::Graph observed = SmallCommunityGraph(5);
  CpganConfig config = FastConfig();
  config.epochs = 5;
  Cpgan model(config);
  model.Fit(observed);
  std::string path = ::testing::TempDir() + "/cpgan_weights2.bin";
  ASSERT_TRUE(model.SaveWeights(path));

  CpganConfig other = FastConfig();
  other.epochs = 5;
  other.hidden_dim = 24;  // different architecture
  Cpgan mismatched(other);
  mismatched.Fit(observed);
  EXPECT_FALSE(mismatched.LoadWeights(path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cpgan::core

namespace cpgan::core {
namespace {

TEST(CpganTest, FitManyTrainsOnGraphSet) {
  // Two graphs from the same family; the model trains on both and
  // generates for the first.
  graph::Graph a = SmallCommunityGraph(6);
  graph::Graph b = SmallCommunityGraph(7);
  CpganConfig config = FastConfig();
  config.epochs = 30;
  Cpgan model(config);
  TrainStats stats = model.FitMany({a, b});
  EXPECT_EQ(static_cast<int>(stats.g_loss.size()), 30);
  for (float loss : stats.g_loss) EXPECT_TRUE(std::isfinite(loss));
  graph::Graph generated = model.Generate();
  EXPECT_EQ(generated.num_nodes(), a.num_nodes());
}

TEST(CpganTest, FitManyHandlesDifferentSizes) {
  graph::Graph big = SmallCommunityGraph(8);
  data::CommunityGraphParams params;
  params.num_nodes = 60;
  params.num_edges = 200;
  params.num_communities = 4;
  util::Rng rng(9);
  graph::Graph small = data::MakeCommunityGraph(params, rng);
  CpganConfig config = FastConfig();
  config.epochs = 20;
  Cpgan model(config);
  TrainStats stats = model.FitMany({big, small});
  EXPECT_TRUE(std::isfinite(stats.g_loss.back()));
}

}  // namespace
}  // namespace cpgan::core
