#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "core/ladder_encoder.h"
#include "tests/test_util.h"

namespace cpgan::core {
namespace {

namespace t = cpgan::tensor;
using cpgan::testing::TestMatrix;

std::shared_ptr<t::SparseMatrix> SmallAdjacency() {
  return std::make_shared<t::SparseMatrix>(t::NormalizedAdjacency(
      8, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 5}, {5, 6}, {6, 7}, {7, 4},
          {0, 4}}));
}

TEST(LadderEncoderTest, OutputShapes) {
  util::Rng rng(1);
  LadderEncoder encoder(4, 6, {3}, rng);
  EXPECT_EQ(encoder.num_levels(), 2);
  t::Tensor x = t::Constant(TestMatrix(8, 4, 1.0f, 1));
  EncoderOutput out = encoder.Forward(SmallAdjacency(), x);
  ASSERT_EQ(out.z.size(), 2u);
  EXPECT_EQ(out.z[0].rows(), 8);
  EXPECT_EQ(out.z[0].cols(), 6);
  EXPECT_EQ(out.z[1].rows(), 3);
  ASSERT_EQ(out.assignments.size(), 1u);
  EXPECT_EQ(out.assignments[0].rows(), 8);
  EXPECT_EQ(out.assignments[0].cols(), 3);
  ASSERT_EQ(out.z_rec.size(), 2u);
  EXPECT_EQ(out.z_rec[0].rows(), 8);
  EXPECT_EQ(out.z_rec[1].rows(), 8);
  EXPECT_EQ(out.readout.rows(), 2);
  EXPECT_EQ(out.readout.cols(), 6);
}

TEST(LadderEncoderTest, SingleLevelHasNoPooling) {
  util::Rng rng(2);
  LadderEncoder encoder(4, 6, {}, rng);
  t::Tensor x = t::Constant(TestMatrix(8, 4, 1.0f, 2));
  EncoderOutput out = encoder.Forward(SmallAdjacency(), x);
  EXPECT_EQ(out.z.size(), 1u);
  EXPECT_TRUE(out.assignments.empty());
  EXPECT_EQ(out.readout.rows(), 1);
}

TEST(LadderEncoderTest, AssignmentRowsAreDistributions) {
  util::Rng rng(3);
  LadderEncoder encoder(4, 6, {3}, rng);
  t::Tensor x = t::Constant(TestMatrix(8, 4, 1.0f, 3));
  EncoderOutput out = encoder.Forward(SmallAdjacency(), x);
  const t::Matrix& s = out.assignments[0].value();
  for (int r = 0; r < s.rows(); ++r) {
    double total = 0.0;
    for (int c = 0; c < s.cols(); ++c) {
      EXPECT_GE(s.At(r, c), 0.0f);
      total += s.At(r, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
}

TEST(LadderEncoderTest, ReadoutIsPermutationInvariant) {
  // Eq. (5): E(P A P^T) = E(A) for the graph-level readout.
  util::Rng rng(4);
  LadderEncoder encoder(4, 6, {3}, rng);
  int n = 8;
  std::vector<std::pair<int, int>> edges = {
      {0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 5}, {5, 6}, {6, 7}, {7, 4}, {0, 4}};
  t::Matrix x = TestMatrix(n, 4, 1.0f, 4);

  auto a1 = std::make_shared<t::SparseMatrix>(t::NormalizedAdjacency(n, edges));
  EncoderOutput out1 = encoder.Forward(a1, t::Constant(x));

  // Apply permutation P.
  std::vector<int> perm = {3, 5, 0, 7, 1, 6, 2, 4};
  std::vector<std::pair<int, int>> permuted_edges;
  for (auto [u, v] : edges) permuted_edges.push_back({perm[u], perm[v]});
  t::Matrix x_perm(n, 4);
  for (int v = 0; v < n; ++v) {
    for (int c = 0; c < 4; ++c) x_perm.At(perm[v], c) = x.At(v, c);
  }
  auto a2 = std::make_shared<t::SparseMatrix>(
      t::NormalizedAdjacency(n, permuted_edges));
  EncoderOutput out2 = encoder.Forward(a2, t::Constant(x_perm));

  t::Matrix diff = out1.readout.value();
  diff.Axpy(-1.0f, out2.readout.value());
  EXPECT_LT(diff.Norm(), 1e-3f);
}

TEST(LadderEncoderTest, NodeOutputsPermuteWithInput) {
  util::Rng rng(5);
  LadderEncoder encoder(4, 6, {3}, rng);
  int n = 8;
  std::vector<std::pair<int, int>> edges = {
      {0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 5}, {5, 6}, {6, 7}, {7, 4}, {0, 4}};
  t::Matrix x = TestMatrix(n, 4, 1.0f, 5);
  auto a1 = std::make_shared<t::SparseMatrix>(t::NormalizedAdjacency(n, edges));
  EncoderOutput out1 = encoder.Forward(a1, t::Constant(x));

  std::vector<int> perm = {1, 0, 3, 2, 5, 4, 7, 6};
  std::vector<std::pair<int, int>> permuted_edges;
  for (auto [u, v] : edges) permuted_edges.push_back({perm[u], perm[v]});
  t::Matrix x_perm(n, 4);
  for (int v = 0; v < n; ++v) {
    for (int c = 0; c < 4; ++c) x_perm.At(perm[v], c) = x.At(v, c);
  }
  auto a2 = std::make_shared<t::SparseMatrix>(
      t::NormalizedAdjacency(n, permuted_edges));
  EncoderOutput out2 = encoder.Forward(a2, t::Constant(x_perm));

  // z0 rows permute with the nodes.
  for (int v = 0; v < n; ++v) {
    for (int c = 0; c < 6; ++c) {
      EXPECT_NEAR(out1.z[0].value().At(v, c),
                  out2.z[0].value().At(perm[v], c), 1e-3f);
    }
  }
}

TEST(LadderEncoderTest, DenseForwardMatchesSparseOnSameGraph) {
  util::Rng rng(6);
  LadderEncoder encoder(4, 6, {3}, rng);
  int n = 8;
  std::vector<std::pair<int, int>> edges = {
      {0, 1}, {1, 2}, {2, 3}, {4, 5}, {6, 7}};
  t::Tensor x = t::Constant(TestMatrix(n, 4, 1.0f, 6));
  auto sparse = std::make_shared<t::SparseMatrix>(
      t::NormalizedAdjacency(n, edges));
  EncoderOutput sparse_out = encoder.Forward(sparse, x);

  // The dense path applies row normalization to a raw 0/1 adjacency; the
  // sparse path uses symmetric normalization, so readouts differ in value
  // but must share shapes and finiteness.
  t::Matrix dense(n, n);
  for (auto [u, v] : edges) {
    dense.At(u, v) = 1.0f;
    dense.At(v, u) = 1.0f;
  }
  EncoderOutput dense_out = encoder.ForwardDense(t::Constant(dense), x);
  EXPECT_TRUE(dense_out.readout.value().SameShape(sparse_out.readout.value()));
  EXPECT_TRUE(std::isfinite(dense_out.readout.value().Norm()));
}

TEST(LadderEncoderTest, GradientsFlowIntoDenseAdjacency) {
  util::Rng rng(7);
  LadderEncoder encoder(3, 4, {2}, rng);
  int n = 6;
  t::Tensor a(TestMatrix(n, n, 0.3f, 7), true);
  // Symmetrize and shift to [0, ~0.6].
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      float v = 0.3f + 0.5f * (a.value().At(i, j) + a.value().At(j, i));
      a.mutable_value().At(i, j) = std::max(0.0f, v);
    }
  }
  t::Tensor x = t::Constant(TestMatrix(n, 3, 1.0f, 8));
  EncoderOutput out = encoder.ForwardDense(a, x);
  t::Backward(t::SumAll(t::Square(out.readout)));
  EXPECT_GT(a.grad().Norm(), 0.0f);
}

TEST(LadderEncoderTest, ThreeLevelLadder) {
  util::Rng rng(8);
  LadderEncoder encoder(4, 6, {4, 2}, rng);
  EXPECT_EQ(encoder.num_levels(), 3);
  t::Tensor x = t::Constant(TestMatrix(8, 4, 1.0f, 9));
  EncoderOutput out = encoder.Forward(SmallAdjacency(), x);
  EXPECT_EQ(out.z.size(), 3u);
  EXPECT_EQ(out.assignments.size(), 2u);
  EXPECT_EQ(out.z[2].rows(), 2);
  EXPECT_EQ(out.z_rec[2].rows(), 8);
  EXPECT_EQ(out.readout.rows(), 3);
}

}  // namespace
}  // namespace cpgan::core
