#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/cpgan.h"
#include "core/hier_assembly.h"
#include "data/synthetic.h"
#include "graph/graph.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cpgan::core {
namespace {

namespace t = cpgan::tensor;

/// Planted three-block scorer: intra-community pairs score high, cross
/// pairs low, independent of which subset of ids is decoded.
SubgraphScorer PlantedScorer(const std::vector<int>& labels) {
  return [labels](const std::vector<int>& ids) {
    const int k = static_cast<int>(ids.size());
    t::Matrix probs(k, k);
    for (int a = 0; a < k; ++a) {
      for (int b = 0; b < k; ++b) {
        if (a == b) continue;
        probs.At(a, b) =
            labels[ids[a]] == labels[ids[b]] ? 0.7f : 0.02f;
      }
    }
    return probs;
  };
}

std::vector<int> NodeLabels(const CommunitySkeleton& skeleton) {
  std::vector<int> labels(skeleton.num_nodes, 0);
  for (int c = 0; c < skeleton.num_communities(); ++c) {
    for (int v : skeleton.members[c]) labels[v] = c;
  }
  return labels;
}

TEST(HierStreamSeedTest, AdjacentStreamsDecorrelated) {
  uint64_t a = HierStreamSeed(7, 0);
  uint64_t b = HierStreamSeed(7, 1);
  uint64_t c = HierStreamSeed(8, 0);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
  // The derivation is a pure function (re-derivable on any thread).
  EXPECT_EQ(a, HierStreamSeed(7, 0));
}

TEST(BuildSkeletonTest, ScalesSizesAndSplitsBudgets) {
  // Observed profile 3:2:1 scaled to 24 nodes -> 12/8/4.
  std::vector<int> labels = {0, 0, 0, 1, 1, 2};
  std::vector<std::vector<double>> density = {
      {0.5, 0.05, 0.05}, {0.05, 0.5, 0.05}, {0.05, 0.05, 0.5}};
  CommunitySkeleton skeleton = BuildSkeleton(labels, 24, 60, density);
  ASSERT_EQ(skeleton.num_communities(), 3);
  EXPECT_EQ(skeleton.members[0].size(), 12u);
  EXPECT_EQ(skeleton.members[1].size(), 8u);
  EXPECT_EQ(skeleton.members[2].size(), 4u);
  // Members are contiguous ascending ranges covering [0, 24) exactly once.
  int next = 0;
  for (const auto& community : skeleton.members) {
    for (int v : community) EXPECT_EQ(v, next++);
  }
  EXPECT_EQ(next, 24);
  // Budget matrix is symmetric, capped by pair counts, and carries the
  // full target (capacities are nowhere near binding here).
  int64_t total = 0;
  for (int a = 0; a < 3; ++a) {
    for (int b = a; b < 3; ++b) {
      EXPECT_EQ(skeleton.budget[a][b], skeleton.budget[b][a]);
      const int64_t ka = static_cast<int64_t>(skeleton.members[a].size());
      const int64_t kb = static_cast<int64_t>(skeleton.members[b].size());
      const int64_t cap = a == b ? ka * (ka - 1) / 2 : ka * kb;
      EXPECT_LE(skeleton.budget[a][b], cap);
      total += skeleton.budget[a][b];
    }
  }
  EXPECT_EQ(total, 60);
  // Dense diagonal: most of the budget must land inside communities.
  int64_t intra = skeleton.budget[0][0] + skeleton.budget[1][1] +
                  skeleton.budget[2][2];
  EXPECT_GT(intra, 40);
}

TEST(BuildSkeletonTest, UnobservedCommunityStaysEmpty) {
  // Label 1 never occurs: its community must receive no output nodes (the
  // latent row borrowing in GenerateHierarchicalFromLatents needs every
  // populated community to have at least one observed member).
  std::vector<int> labels = {0, 0, 2, 2};
  std::vector<std::vector<double>> density(3, std::vector<double>(3, 0.3));
  CommunitySkeleton skeleton = BuildSkeleton(labels, 50, 80, density);
  ASSERT_EQ(skeleton.num_communities(), 3);
  EXPECT_TRUE(skeleton.members[1].empty());
  EXPECT_EQ(skeleton.members[0].size() + skeleton.members[2].size(), 50u);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(skeleton.budget[1][c], 0);
    EXPECT_EQ(skeleton.budget[c][1], 0);
  }
}

TEST(BuildSkeletonTest, AllZeroDensityFallsBackToPairCounts) {
  std::vector<int> labels = {0, 0, 0, 1, 1, 1};
  std::vector<std::vector<double>> density(2, std::vector<double>(2, 0.0));
  CommunitySkeleton skeleton = BuildSkeleton(labels, 12, 30, density);
  int64_t total = 0;
  for (int a = 0; a < 2; ++a) {
    for (int b = a; b < 2; ++b) total += skeleton.budget[a][b];
  }
  EXPECT_EQ(total, 30);
}

TEST(HierAssemblyTest, BitwiseIdenticalAcrossThreadCounts) {
  std::vector<int> observed_labels;
  for (int i = 0; i < 90; ++i) observed_labels.push_back(i / 30);
  std::vector<std::vector<double>> density = {
      {0.6, 0.03, 0.03}, {0.03, 0.6, 0.03}, {0.03, 0.03, 0.6}};
  CommunitySkeleton skeleton =
      BuildSkeleton(observed_labels, 90, 260, density);
  std::vector<int> labels = NodeLabels(skeleton);

  HierAssemblyOptions options;
  options.assembly.subgraph_size = 24;
  options.seed = 99;
  std::vector<std::vector<graph::Edge>> runs;
  for (int threads : {1, 2, 8}) {
    util::ThreadPool::SetGlobalThreads(threads);
    graph::Graph out =
        HierAssembleGraph(skeleton, PlantedScorer(labels), options);
    EXPECT_EQ(out.num_nodes(), 90);
    EXPECT_GT(out.num_edges(), 0);
    runs.push_back(out.Edges());
  }
  util::ThreadPool::SetGlobalThreads(1);
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(HierAssemblyTest, MostEdgesRespectTheSkeleton) {
  std::vector<int> observed_labels;
  for (int i = 0; i < 80; ++i) observed_labels.push_back(i / 20);
  std::vector<std::vector<double>> density(4,
                                           std::vector<double>(4, 0.02));
  for (int c = 0; c < 4; ++c) density[c][c] = 0.7;
  CommunitySkeleton skeleton =
      BuildSkeleton(observed_labels, 80, 240, density);
  std::vector<int> labels = NodeLabels(skeleton);
  HierAssemblyOptions options;
  options.seed = 5;
  graph::Graph out =
      HierAssembleGraph(skeleton, PlantedScorer(labels), options);
  int64_t intra = 0;
  for (const auto& [u, v] : out.Edges()) {
    if (labels[u] == labels[v]) ++intra;
  }
  EXPECT_GT(static_cast<double>(intra) / out.num_edges(), 0.75);
}

TEST(HierAssemblyTest, AbortMidDecodeReturnsValidPartialGraph) {
  std::vector<int> observed_labels;
  for (int i = 0; i < 120; ++i) observed_labels.push_back(i / 20);
  std::vector<std::vector<double>> density(6,
                                           std::vector<double>(6, 0.05));
  for (int c = 0; c < 6; ++c) density[c][c] = 0.6;
  CommunitySkeleton skeleton =
      BuildSkeleton(observed_labels, 120, 400, density);
  std::vector<int> labels = NodeLabels(skeleton);

  // Reference: the uninterrupted decode.
  HierAssemblyOptions options;
  options.seed = 17;
  options.wave_size = 2;
  graph::Graph full =
      HierAssembleGraph(skeleton, PlantedScorer(labels), options);

  // Abort after a few polls: the result must be a valid graph over all
  // nodes with a strict subset of the work done, and the flag must be set.
  std::atomic<int> polls{0};
  bool aborted = false;
  options.aborted = &aborted;
  options.should_abort = [&polls] { return ++polls > 4; };
  graph::Graph partial =
      HierAssembleGraph(skeleton, PlantedScorer(labels), options);
  EXPECT_TRUE(aborted);
  EXPECT_EQ(partial.num_nodes(), 120);
  EXPECT_LT(partial.num_edges(), full.num_edges());
  for (const auto& [u, v] : partial.Edges()) {
    EXPECT_GE(u, 0);
    EXPECT_LT(v, 120);
    EXPECT_NE(u, v);
  }
}

TEST(HierAssemblyTest, AbortedFlagResetsOnReuse) {
  std::vector<int> observed_labels = {0, 0, 0, 0, 1, 1, 1, 1};
  std::vector<std::vector<double>> density(2, std::vector<double>(2, 0.4));
  CommunitySkeleton skeleton =
      BuildSkeleton(observed_labels, 40, 120, density);
  std::vector<int> labels = NodeLabels(skeleton);
  HierAssemblyOptions options;
  options.seed = 3;
  bool aborted = false;
  options.aborted = &aborted;
  options.should_abort = [] { return true; };
  HierAssembleGraph(skeleton, PlantedScorer(labels), options);
  EXPECT_TRUE(aborted);
  // Same options struct, no abort this time: the stale flag must clear.
  options.should_abort = [] { return false; };
  graph::Graph out =
      HierAssembleGraph(skeleton, PlantedScorer(labels), options);
  EXPECT_FALSE(aborted);
  EXPECT_GT(out.num_edges(), 0);
}

TEST(HierAssemblyTest, EmptyAndSingletonCommunities) {
  // Hand-built skeleton: an empty community, two singletons, one real one.
  CommunitySkeleton skeleton;
  skeleton.num_nodes = 6;
  skeleton.members = {{}, {0}, {1}, {2, 3, 4, 5}};
  skeleton.budget.assign(4, std::vector<int64_t>(4, 0));
  skeleton.budget[3][3] = 4;
  skeleton.budget[1][2] = skeleton.budget[2][1] = 1;  // singleton-singleton
  skeleton.budget[1][3] = skeleton.budget[3][1] = 2;
  HierAssemblyOptions options;
  options.seed = 23;
  graph::Graph out = HierAssembleGraph(
      skeleton,
      [](const std::vector<int>& ids) {
        const int k = static_cast<int>(ids.size());
        return t::Matrix(k, k, 0.5f);
      },
      options);
  EXPECT_EQ(out.num_nodes(), 6);
  // The singleton-singleton block can stitch its one cross pair; the
  // singleton never gains an intra edge.
  EXPECT_TRUE(out.HasEdge(0, 1));
  EXPECT_GT(out.num_edges(), 1);
  EXPECT_LE(out.num_edges(), 7);

  // Degenerate skeletons return edgeless graphs instead of crashing.
  CommunitySkeleton tiny;
  tiny.num_nodes = 1;
  tiny.members = {{0}};
  tiny.budget = {{3}};
  EXPECT_EQ(HierAssembleGraph(
                tiny,
                [](const std::vector<int>& ids) {
                  const int k = static_cast<int>(ids.size());
                  return t::Matrix(k, k, 0.5f);
                },
                options)
                .num_edges(),
            0);
}

TEST(HierAssemblyTest, PhasesRunInsideRunPhaseWrapper) {
  std::vector<int> observed_labels = {0, 0, 1, 1, 2, 2};
  std::vector<std::vector<double>> density(3, std::vector<double>(3, 0.3));
  CommunitySkeleton skeleton =
      BuildSkeleton(observed_labels, 36, 100, density);
  std::vector<int> labels = NodeLabels(skeleton);
  HierAssemblyOptions options;
  options.seed = 41;
  options.wave_size = 1;
  int phases = 0;
  bool inside = false;
  SubgraphScorer scorer = [&labels, &inside](const std::vector<int>& ids) {
    EXPECT_TRUE(inside);  // every decode happens inside the wrapper
    return PlantedScorer(labels)(ids);
  };
  options.run_phase = [&](const std::function<void()>& phase) {
    ++phases;
    inside = true;
    phase();
    inside = false;
  };
  graph::Graph wrapped = HierAssembleGraph(skeleton, scorer, options);
  // wave_size=1: one phase per populated community plus one per stitch
  // pair with budget.
  EXPECT_GE(phases, 3);
  // The wrapper is transparent: same output as running phases directly.
  options.run_phase = nullptr;
  graph::Graph direct =
      HierAssembleGraph(skeleton, PlantedScorer(labels), options);
  EXPECT_EQ(wrapped.Edges(), direct.Edges());
}

// ----- End-to-end: the trained model's hierarchical generation. -----

graph::Graph TrainFixture(Cpgan* model) {
  data::CommunityGraphParams params;
  params.num_nodes = 120;
  params.num_edges = 420;
  params.num_communities = 6;
  params.intra_fraction = 0.92;
  util::Rng rng(3);
  graph::Graph observed = data::MakeCommunityGraph(params, rng);
  model->Fit(observed);
  return observed;
}

CpganConfig HierFixtureConfig() {
  CpganConfig config;
  config.epochs = 20;
  config.subgraph_size = 80;
  config.hidden_dim = 16;
  config.latent_dim = 8;
  config.feature_dim = 6;
  config.seed = 11;
  return config;
}

TEST(CpganHierTest, GenerateDeterministicAcrossThreadCounts) {
  Cpgan model(HierFixtureConfig());
  graph::Graph observed = TrainFixture(&model);
  GenerateControls controls;
  controls.hierarchical = true;
  std::vector<std::vector<graph::Edge>> runs;
  for (int threads : {1, 2, 8}) {
    util::ThreadPool::SetGlobalThreads(threads);
    util::Rng rng(77);
    graph::Graph out = model.GenerateWith(controls, rng);
    EXPECT_EQ(out.num_nodes(), observed.num_nodes());
    EXPECT_GT(out.num_edges(), 0);
    runs.push_back(out.Edges());
  }
  util::ThreadPool::SetGlobalThreads(1);
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(CpganHierTest, GeneratesLargerThanTrainingGraph) {
  Cpgan model(HierFixtureConfig());
  graph::Graph observed = TrainFixture(&model);
  GenerateControls controls;
  controls.hierarchical = true;
  controls.num_nodes = observed.num_nodes() * 3;
  controls.num_edges = observed.num_edges() * 3;
  util::Rng rng(5);
  graph::Graph out = model.GenerateWith(controls, rng);
  EXPECT_EQ(out.num_nodes(), observed.num_nodes() * 3);
  EXPECT_GT(out.num_edges(), observed.num_edges());
}

TEST(CpganHierTest, LearnedCommunityLabelsCoverObservedNodes) {
  Cpgan model(HierFixtureConfig());
  graph::Graph observed = TrainFixture(&model);
  std::vector<int> labels = model.LearnedCommunityLabels();
  ASSERT_EQ(static_cast<int>(labels.size()), observed.num_nodes());
  for (int label : labels) EXPECT_GE(label, 0);
}

}  // namespace
}  // namespace cpgan::core
