// Chaos suite: drives every ChaosPlan fault class through the server and
// asserts the degradation contract — never crash, never deadlock, every
// submitted request gets exactly one response, and every non-ok response is
// explicitly flagged shed / degraded / deadline_exceeded / error. Run under
// ASan and TSan via -DCPGAN_SANITIZE (docs/TESTING.md).

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/chaos.h"
#include "serve/server.h"
#include "tests/serve/serve_test_util.h"
#include "util/memory_tracker.h"

namespace cpgan::serve {
namespace {

bool Flagged(const Response& response) {
  switch (response.status) {
    case ResponseStatus::kOk:
    case ResponseStatus::kDegraded:
    case ResponseStatus::kShed:
    case ResponseStatus::kDeadlineExceeded:
    case ResponseStatus::kError:
      return true;
  }
  return false;
}

/// Submits `per_thread` copies of `request` from `threads` client threads
/// and returns every response (one per submission — the never-lose-a-request
/// half of the contract is the fact that this function returns at all).
std::vector<Response> Burst(Server& server, const Request& request,
                            int threads, int per_thread) {
  std::vector<std::vector<Response>> collected(threads);
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&server, &request, &collected, t, per_thread] {
      for (int i = 0; i < per_thread; ++i) {
        Request r = request;
        r.seed = static_cast<uint64_t>(t) * 1000 + i;
        collected[t].push_back(server.Submit(r));
      }
    });
  }
  for (std::thread& client : clients) client.join();
  std::vector<Response> all;
  for (const auto& batch : collected) {
    all.insert(all.end(), batch.begin(), batch.end());
  }
  return all;
}

class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override {
    util::MemoryTracker::Global().SetBudgetBytes(0);
  }

  ServerOptions BaseOptions() {
    ServerOptions options;
    options.num_workers = 2;
    options.queue_capacity = 4;
    options.watchdog_period_ms = 1.0;
    options.io_backoff.initial_delay_ms = 0.1;
    options.io_backoff.max_delay_ms = 1.0;
    return options;
  }
};

TEST_F(ChaosTest, InjectorIsDeterministicBySequence) {
  ChaosPlan plan;
  plan.slow_every = 3;
  plan.slow_offset = 1;
  plan.slow_ms = 7.0;
  plan.load_failures = 2;
  ChaosInjector injector(plan);
  EXPECT_DOUBLE_EQ(injector.SlowDelayMs(1), 7.0);
  EXPECT_DOUBLE_EQ(injector.SlowDelayMs(4), 7.0);
  EXPECT_DOUBLE_EQ(injector.SlowDelayMs(2), 0.0);
  EXPECT_DOUBLE_EQ(injector.SlowDelayMs(3), 0.0);
  EXPECT_TRUE(injector.ConsumeLoadFault());
  EXPECT_TRUE(injector.ConsumeLoadFault());
  EXPECT_FALSE(injector.ConsumeLoadFault());  // exhausted
  EXPECT_EQ(injector.pending_load_faults(), 0);
}

TEST_F(ChaosTest, SlowRequestsExceedDeadlinesOthersComplete) {
  ServerOptions options = BaseOptions();
  // Wide margins so the split survives sanitizer builds: an un-slowed
  // decode takes ~4 ms native and ~20x that under TSan — still far below
  // the deadline — while slowed requests overshoot it by 4x.
  options.default_deadline_ms = 150.0;
  Server server(&SharedServeRegistry(), options);
  ChaosPlan plan;
  plan.slow_every = 2;   // every even request stalls past its deadline
  plan.slow_ms = 600.0;
  server.SetChaos(plan);
  server.Start();
  std::vector<Response> responses = Burst(server, Request{}, 3, 4);

  int deadline_exceeded = 0;
  int completed = 0;
  for (const Response& response : responses) {
    ASSERT_TRUE(Flagged(response));
    EXPECT_NE(response.status, ResponseStatus::kError) << response.detail;
    deadline_exceeded += response.status == ResponseStatus::kDeadlineExceeded;
    completed += response.completed();
  }
  EXPECT_EQ(responses.size(), 12u);
  EXPECT_GT(deadline_exceeded, 0);
  EXPECT_GT(completed, 0);
  EXPECT_GT(server.Stats().watchdog_cancels, 0u);

  // Recovery: with the burst drained, an unhurried request completes.
  Request calm;
  calm.deadline_ms = 0.0;  // unlimited
  calm.seed = 99;
  Response after = server.Submit(calm);
  EXPECT_TRUE(after.completed()) << after.detail;
  server.Stop();
}

TEST_F(ChaosTest, WorkerStallShedsOverflowThenRecovers) {
  ServerOptions options = BaseOptions();
  options.num_workers = 1;     // one wedged worker stalls the whole engine
  options.queue_capacity = 2;
  Server server(&SharedServeRegistry(), options);
  ChaosPlan plan;
  plan.stall_every = 1;        // every decode holds the kernel lock extra
  plan.stall_ms = 30.0;
  server.SetChaos(plan);
  server.Start();
  std::vector<Response> responses = Burst(server, Request{}, 8, 2);

  int shed = 0;
  int completed = 0;
  for (const Response& response : responses) {
    ASSERT_TRUE(Flagged(response));
    EXPECT_NE(response.status, ResponseStatus::kError) << response.detail;
    shed += response.status == ResponseStatus::kShed;
    completed += response.completed();
  }
  EXPECT_EQ(responses.size(), 16u);
  EXPECT_GT(shed, 0) << "flood over a capacity-2 queue must shed";
  EXPECT_GT(completed, 0);

  Response after = server.Submit(Request{});
  EXPECT_TRUE(after.completed()) << after.detail;
  server.Stop();
}

TEST_F(ChaosTest, AllocationPressureDegradesButCompletes) {
  int64_t live = util::MemoryTracker::Global().live_bytes();
  ServerOptions options = BaseOptions();
  options.memory_budget_bytes = live * 10 + (int64_t{1} << 20);
  Server server(&SharedServeRegistry(), options);
  ChaosPlan plan;
  plan.alloc_every = 1;  // every request runs over the advisory budget
  plan.alloc_bytes = options.memory_budget_bytes * 2;
  server.SetChaos(plan);
  server.Start();
  std::vector<Response> responses = Burst(server, Request{}, 2, 3);
  for (const Response& response : responses) {
    ASSERT_EQ(response.status, ResponseStatus::kDegraded) << response.detail;
    EXPECT_TRUE(response.completed());
    EXPECT_GT(response.nodes, 0);
  }
  EXPECT_GE(server.Stats().degraded, 6u);
  server.Stop();

  // Recovery: with the budget cleared, a fresh server serves full fidelity.
  util::MemoryTracker::Global().SetBudgetBytes(0);
  Server recovered(&SharedServeRegistry(), BaseOptions());
  recovered.Start();
  Response after = recovered.Submit(Request{});
  EXPECT_EQ(after.status, ResponseStatus::kOk) << after.detail;
  recovered.Stop();
}

TEST_F(ChaosTest, TransientLoadFailuresRetryUntilTheSwapLands) {
  ModelRegistry registry;
  std::string error;
  ASSERT_TRUE(registry.AddModel(ServeTestSpec(), &error)) << error;
  uint64_t before = registry.Find("default")->version();

  ChaosPlan plan;
  plan.load_failures = 2;
  ChaosInjector chaos(plan);
  util::BackoffPolicy backoff;
  backoff.max_attempts = 4;
  backoff.initial_delay_ms = 0.1;
  ASSERT_TRUE(registry.Reload("default", ServeTestCheckpoint(), backoff,
                              &error, &chaos))
      << error;
  EXPECT_EQ(registry.Find("default")->version(), before + 1);
  EXPECT_EQ(chaos.pending_load_faults(), 0);
}

TEST_F(ChaosTest, ExhaustedLoadRetriesKeepOldModelServing) {
  ModelRegistry registry;
  std::string error;
  ASSERT_TRUE(registry.AddModel(ServeTestSpec(), &error)) << error;
  uint64_t before = registry.Find("default")->version();

  ChaosPlan plan;
  plan.load_failures = 10;  // outage outlasts the retry budget
  ChaosInjector chaos(plan);
  util::BackoffPolicy backoff;
  backoff.max_attempts = 2;
  backoff.initial_delay_ms = 0.1;
  EXPECT_FALSE(registry.Reload("default", ServeTestCheckpoint(), backoff,
                               &error, &chaos));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(registry.Find("default")->version(), before);

  // The old model still serves correctly.
  Server server(&registry, BaseOptions());
  server.Start();
  Response response = server.Submit(Request{});
  EXPECT_EQ(response.status, ResponseStatus::kOk) << response.detail;
  server.Stop();
}

TEST_F(ChaosTest, CombinedChaosNeverLosesOrMislabelsARequest) {
  std::string dir = ServeTempDir("chaos_combined");
  ServerOptions options = BaseOptions();
  options.num_workers = 2;
  options.queue_capacity = 3;
  options.default_deadline_ms = 40.0;
  options.request_log = dir + "/requests.jsonl";
  Server server(&SharedServeRegistry(), options);
  ChaosPlan plan;
  plan.slow_every = 3;
  plan.slow_ms = 25.0;
  plan.stall_every = 4;
  plan.stall_ms = 20.0;
  plan.alloc_every = 5;
  plan.alloc_bytes = int64_t{1} << 40;  // guaranteed over any budget
  plan.log_failures = 3;
  server.SetChaos(plan);
  // Give the alloc faults a budget to run over.
  util::MemoryTracker::Global().SetBudgetBytes(
      util::MemoryTracker::Global().live_bytes() * 10 + (int64_t{1} << 20));
  server.Start();

  std::vector<Response> responses = Burst(server, Request{}, 6, 4);
  ASSERT_EQ(responses.size(), 24u);
  uint64_t ok = 0, degraded = 0, shed = 0, expired = 0, errors = 0;
  for (const Response& response : responses) {
    ASSERT_TRUE(Flagged(response));
    ok += response.status == ResponseStatus::kOk;
    degraded += response.status == ResponseStatus::kDegraded;
    shed += response.status == ResponseStatus::kShed;
    expired += response.status == ResponseStatus::kDeadlineExceeded;
    errors += response.status == ResponseStatus::kError;
  }
  EXPECT_EQ(errors, 0u);
  EXPECT_EQ(ok + degraded + shed + expired, 24u);

  // Terminal accounting matches: every received request ended in exactly
  // one bucket.
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.received, 24u);
  EXPECT_EQ(stats.completed + stats.shed + stats.deadline_exceeded +
                stats.errors,
            24u);
  // The flaky log appends were retried (3 injected failures).
  EXPECT_GE(stats.retries, 3u);

  // Recover: chaos periodic faults still fire, but an unhurried request
  // always terminates with a completed response.
  Request calm;
  calm.deadline_ms = 0.0;
  Response after = server.Submit(calm);
  EXPECT_TRUE(after.completed()) << after.detail;
  server.Stop();

  // Every response (including shed/expired) reached the request log.
  std::string log = SlurpFile(options.request_log);
  int lines = 0;
  for (char c : log) lines += c == '\n';
  EXPECT_EQ(lines, 25);
}

}  // namespace
}  // namespace cpgan::serve
