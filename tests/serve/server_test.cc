// Server behavior under normal operation: per-seed bitwise determinism,
// deadline flagging, shedding when stopped, protocol dispatch (RELOAD /
// STATS / parse errors), warm-load equivalence, and the JSONL request log.

#include "serve/server.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/protocol.h"
#include "serve/registry.h"
#include "tests/serve/serve_test_util.h"
#include "util/memory_tracker.h"

namespace cpgan::serve {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    util::MemoryTracker::Global().SetBudgetBytes(0);
  }

  ServerOptions QuickOptions() {
    ServerOptions options;
    options.num_workers = 2;
    options.queue_capacity = 8;
    return options;
  }
};

TEST_F(ServerTest, GenerateIsBitwiseDeterministicPerSeed) {
  Server server(&SharedServeRegistry(), QuickOptions());
  server.Start();
  std::string dir = ServeTempDir("server_determinism");
  Request request;
  request.seed = 5;
  request.out = dir + "/a.txt";
  Response first = server.Submit(request);
  request.out = dir + "/b.txt";
  Response second = server.Submit(request);
  request.seed = 6;
  request.out = dir + "/c.txt";
  Response third = server.Submit(request);
  server.Stop();

  ASSERT_EQ(first.status, ResponseStatus::kOk) << first.detail;
  ASSERT_EQ(second.status, ResponseStatus::kOk) << second.detail;
  ASSERT_EQ(third.status, ResponseStatus::kOk) << third.detail;
  EXPECT_EQ(first.nodes, ServeTestGraph().num_nodes());
  std::string a = SlurpFile(dir + "/a.txt");
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, SlurpFile(dir + "/b.txt"));       // same seed -> same graph
  EXPECT_NE(a, SlurpFile(dir + "/c.txt"));       // different seed differs
}

TEST_F(ServerTest, HierarchicalRequestIsDeterministicAndSized) {
  Server server(&SharedServeRegistry(), QuickOptions());
  server.Start();
  std::string dir = ServeTempDir("server_hier");
  Request request;
  request.hierarchical = true;
  request.seed = 12;
  request.out = dir + "/a.txt";
  Response first = server.Submit(request);
  request.out = dir + "/b.txt";
  Response second = server.Submit(request);

  // Hierarchical decodes scale past the observed size (the skeleton keeps
  // the observed community profile at any node count).
  Request big;
  big.hierarchical = true;
  big.nodes = ServeTestGraph().num_nodes() * 2;
  big.seed = 12;
  Response big_response = server.Submit(big);
  server.Stop();

  ASSERT_EQ(first.status, ResponseStatus::kOk) << first.detail;
  ASSERT_EQ(second.status, ResponseStatus::kOk) << second.detail;
  EXPECT_EQ(first.nodes, ServeTestGraph().num_nodes());
  EXPECT_GT(first.edges, 0);
  std::string a = SlurpFile(dir + "/a.txt");
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, SlurpFile(dir + "/b.txt"));  // same seed -> same graph

  ASSERT_EQ(big_response.status, ResponseStatus::kOk) << big_response.detail;
  EXPECT_EQ(big_response.nodes, ServeTestGraph().num_nodes() * 2);
  EXPECT_GT(big_response.edges, 0);
}

TEST_F(ServerTest, ArbitrarySizeRequestUsesPriorPath) {
  Server server(&SharedServeRegistry(), QuickOptions());
  server.Start();
  Request request;
  request.nodes = 60;
  request.edges = 150;
  request.seed = 9;
  Response response = server.Submit(request);
  ASSERT_EQ(response.status, ResponseStatus::kOk) << response.detail;
  EXPECT_EQ(response.nodes, 60);
  EXPECT_GT(response.edges, 0);

  // Omitting edges= on a sized request scales the edge budget to preserve
  // the observed density, not the observed edge total.
  Request scaled;
  scaled.nodes = 50;
  scaled.seed = 9;
  Response scaled_response = server.Submit(scaled);
  server.Stop();
  ASSERT_EQ(scaled_response.status, ResponseStatus::kOk)
      << scaled_response.detail;
  EXPECT_EQ(scaled_response.nodes, 50);
  EXPECT_GT(scaled_response.edges, 0);
  EXPECT_LT(scaled_response.edges, ServeTestGraph().num_edges());
}

TEST_F(ServerTest, TinyDeadlineIsFlaggedNotServed) {
  Server server(&SharedServeRegistry(), QuickOptions());
  server.Start();
  Request request;
  request.deadline_ms = 0.001;
  Response response = server.Submit(request);
  server.Stop();
  EXPECT_EQ(response.status, ResponseStatus::kDeadlineExceeded);
  EXPECT_FALSE(response.detail.empty());
}

TEST_F(ServerTest, SubmitWithoutStartIsShed) {
  Server server(&SharedServeRegistry(), QuickOptions());
  Response response = server.Submit(Request{});
  EXPECT_EQ(response.status, ResponseStatus::kShed);
  EXPECT_EQ(response.detail, "server_stopped");
  EXPECT_EQ(server.Stats().shed, 1u);
}

TEST_F(ServerTest, UnknownModelIsAnExplicitError) {
  Server server(&SharedServeRegistry(), QuickOptions());
  server.Start();
  Request request;
  request.model = "nope";
  Response response = server.Submit(request);
  server.Stop();
  EXPECT_EQ(response.status, ResponseStatus::kError);
  EXPECT_NE(response.detail.find("unknown_model"), std::string::npos);
}

TEST_F(ServerTest, HandleLineDispatchesAndCountsParseErrors) {
  Server server(&SharedServeRegistry(), QuickOptions());
  server.Start();
  bool quit = false;
  EXPECT_EQ(server.HandleLine("# comment", &quit), "");
  EXPECT_EQ(server.HandleLine("", &quit), "");

  std::string line = server.HandleLine("GENERATE seed=2", &quit);
  Response response;
  ASSERT_TRUE(ParseResponse(line, &response)) << line;
  EXPECT_EQ(response.status, ResponseStatus::kOk);

  line = server.HandleLine("GENERATE nodes=zero", &quit);
  ASSERT_TRUE(ParseResponse(line, &response)) << line;
  EXPECT_EQ(response.status, ResponseStatus::kError);
  EXPECT_NE(response.detail.find("parse"), std::string::npos);

  line = server.HandleLine("STATS", &quit);
  EXPECT_NE(line.find("stats={"), std::string::npos);
  EXPECT_NE(line.find("\"received\":"), std::string::npos);
  EXPECT_FALSE(quit);

  line = server.HandleLine("QUIT", &quit);
  EXPECT_TRUE(quit);
  ASSERT_TRUE(ParseResponse(line, &response)) << line;
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  server.Stop();
}

TEST_F(ServerTest, ReloadSwapsModelAndBumpsVersion) {
  // Private registry: reloads mutate versions, so keep the shared one clean.
  ModelRegistry registry;
  std::string error;
  ASSERT_TRUE(registry.AddModel(ServeTestSpec(), &error)) << error;
  uint64_t before = registry.Find("default")->version();

  Server server(&registry, QuickOptions());
  server.Start();
  bool quit = false;
  std::string line = server.HandleLine(
      "RELOAD model=default checkpoint=" + ServeTestCheckpoint(), &quit);
  Response response;
  ASSERT_TRUE(ParseResponse(line, &response)) << line;
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_EQ(registry.Find("default")->version(), before + 1);
  EXPECT_EQ(registry.Find("default")->checkpoint(), ServeTestCheckpoint());

  // Reload from a missing file fails; the old model keeps serving.
  line = server.HandleLine("RELOAD model=default checkpoint=/nope.cpck",
                           &quit);
  ASSERT_TRUE(ParseResponse(line, &response)) << line;
  EXPECT_EQ(response.status, ResponseStatus::kError);
  EXPECT_EQ(registry.Find("default")->version(), before + 1);
  Response generate = server.Submit(Request{});
  EXPECT_EQ(generate.status, ResponseStatus::kOk);
  server.Stop();
}

TEST_F(ServerTest, WarmLoadedModelMatchesInProcessTraining) {
  // The checkpoint was written by a Fit of the identical config/seed, so a
  // warm-loaded registry must generate bitwise-identical graphs.
  ModelRegistry warm;
  std::string error;
  ASSERT_TRUE(warm.AddModel(ServeTestSpec(/*warm_load=*/true), &error))
      << error;
  std::string dir = ServeTempDir("server_warm_equiv");

  ServerOptions options = QuickOptions();
  Request request;
  request.seed = 21;
  {
    Server server(&SharedServeRegistry(), options);
    server.Start();
    request.out = dir + "/trained.txt";
    ASSERT_EQ(server.Submit(request).status, ResponseStatus::kOk);
    server.Stop();
  }
  {
    Server server(&warm, options);
    server.Start();
    request.out = dir + "/warm.txt";
    ASSERT_EQ(server.Submit(request).status, ResponseStatus::kOk);
    server.Stop();
  }
  std::string trained = SlurpFile(dir + "/trained.txt");
  ASSERT_FALSE(trained.empty());
  EXPECT_EQ(trained, SlurpFile(dir + "/warm.txt"));
}

TEST_F(ServerTest, RequestLogRecordsEveryResponse) {
  std::string dir = ServeTempDir("server_reqlog");
  ServerOptions options = QuickOptions();
  options.request_log = dir + "/requests.jsonl";
  Server server(&SharedServeRegistry(), options);
  server.Start();
  server.Submit(Request{});
  Request bad;
  bad.model = "nope";
  server.Submit(bad);
  server.Stop();

  std::string log = SlurpFile(options.request_log);
  ASSERT_FALSE(log.empty());
  int lines = 0;
  for (char c : log) lines += c == '\n';
  EXPECT_EQ(lines, 2);
  EXPECT_NE(log.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(log.find("\"status\":\"error\""), std::string::npos);
}

TEST_F(ServerTest, StatsCountersAddUp) {
  Server server(&SharedServeRegistry(), QuickOptions());
  server.Start();
  server.Submit(Request{});                       // ok
  Request expired;
  expired.deadline_ms = 0.001;
  server.Submit(expired);                         // deadline_exceeded
  server.Stop();
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.received, 2u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.errors, 0u);
}

}  // namespace
}  // namespace cpgan::serve
