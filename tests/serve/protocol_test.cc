// Wire-protocol coverage: request parsing (verbs, keys, value validation,
// failure modes) and response format round-trips.

#include "serve/protocol.h"

#include <gtest/gtest.h>

namespace cpgan::serve {
namespace {

TEST(Protocol, ParsesFullGenerateRequest) {
  Request request;
  std::string error;
  ASSERT_TRUE(ParseRequest(
      "GENERATE model=web nodes=256 edges=1024 seed=9 deadline_ms=50.5 "
      "out=/tmp/g.txt hier=1",
      &request, &error))
      << error;
  EXPECT_EQ(request.verb, Verb::kGenerate);
  EXPECT_EQ(request.model, "web");
  EXPECT_EQ(request.nodes, 256);
  EXPECT_EQ(request.edges, 1024);
  EXPECT_EQ(request.seed, 9u);
  EXPECT_DOUBLE_EQ(request.deadline_ms, 50.5);
  EXPECT_EQ(request.out, "/tmp/g.txt");
  EXPECT_TRUE(request.hierarchical);
}

TEST(Protocol, HierFlagParsesAndValidates) {
  Request request;
  std::string error;
  ASSERT_TRUE(ParseRequest("GENERATE hier=0", &request, &error)) << error;
  EXPECT_FALSE(request.hierarchical);
  ASSERT_TRUE(ParseRequest("GENERATE hier=1", &request, &error)) << error;
  EXPECT_TRUE(request.hierarchical);
  EXPECT_FALSE(ParseRequest("GENERATE hier=2", &request, &error));
  EXPECT_NE(error.find("bad value"), std::string::npos);
  EXPECT_FALSE(ParseRequest("GENERATE hier=yes", &request, &error));
}

TEST(Protocol, DefaultsApplyWhenKeysOmitted) {
  Request request;
  std::string error;
  ASSERT_TRUE(ParseRequest("GENERATE", &request, &error)) << error;
  EXPECT_EQ(request.model, "default");
  EXPECT_EQ(request.nodes, 0);
  EXPECT_EQ(request.edges, 0);
  EXPECT_EQ(request.seed, 0u);
  EXPECT_LT(request.deadline_ms, 0.0);  // unset -> server default
  EXPECT_FALSE(request.hierarchical);
}

TEST(Protocol, KeysParseInAnyOrder) {
  Request request;
  std::string error;
  ASSERT_TRUE(ParseRequest("GENERATE seed=3   model=m  nodes=10", &request,
                           &error))
      << error;
  EXPECT_EQ(request.seed, 3u);
  EXPECT_EQ(request.model, "m");
  EXPECT_EQ(request.nodes, 10);
}

TEST(Protocol, RejectsMalformedInput) {
  Request request;
  std::string error;
  EXPECT_FALSE(ParseRequest("FROBNICATE", &request, &error));
  EXPECT_NE(error.find("unknown verb"), std::string::npos);
  EXPECT_FALSE(ParseRequest("GENERATE node=5", &request, &error));
  EXPECT_NE(error.find("unknown key"), std::string::npos);
  EXPECT_FALSE(ParseRequest("GENERATE nodes=-3", &request, &error));
  EXPECT_NE(error.find("bad value"), std::string::npos);
  EXPECT_FALSE(ParseRequest("GENERATE nodes=abc", &request, &error));
  EXPECT_FALSE(ParseRequest("GENERATE deadline_ms=-1", &request, &error));
  EXPECT_FALSE(ParseRequest("GENERATE seed", &request, &error));
  EXPECT_NE(error.find("malformed pair"), std::string::npos);
  EXPECT_FALSE(ParseRequest("RELOAD model=x", &request, &error));
  EXPECT_NE(error.find("checkpoint"), std::string::npos);
}

TEST(Protocol, BlankAndCommentLinesReportEmpty) {
  Request request;
  std::string error;
  EXPECT_FALSE(ParseRequest("", &request, &error));
  EXPECT_EQ(error, "empty");
  EXPECT_FALSE(ParseRequest("   \t  ", &request, &error));
  EXPECT_EQ(error, "empty");
  EXPECT_FALSE(ParseRequest("# a comment", &request, &error));
  EXPECT_EQ(error, "empty");
}

TEST(Protocol, FailedParseLeavesRequestUntouched) {
  Request request;
  request.model = "sentinel";
  std::string error;
  EXPECT_FALSE(ParseRequest("GENERATE nodes=bogus model=x", &request, &error));
  EXPECT_EQ(request.model, "sentinel");
}

TEST(Protocol, ResponseRoundTripsThroughWireForm) {
  Response response;
  response.id = 42;
  response.status = ResponseStatus::kDegraded;
  response.model = "default";
  response.nodes = 100;
  response.edges = 320;
  response.latency_ms = 12.5;
  response.retries = 2;
  response.detail = "memory_or_queue_pressure";
  Response parsed;
  ASSERT_TRUE(ParseResponse(FormatResponse(response), &parsed));
  EXPECT_EQ(parsed.id, 42u);
  EXPECT_EQ(parsed.status, ResponseStatus::kDegraded);
  EXPECT_EQ(parsed.model, "default");
  EXPECT_EQ(parsed.nodes, 100);
  EXPECT_EQ(parsed.edges, 320);
  EXPECT_NEAR(parsed.latency_ms, 12.5, 1e-3);
  EXPECT_EQ(parsed.retries, 2);
  EXPECT_EQ(parsed.detail, "memory_or_queue_pressure");
  EXPECT_TRUE(parsed.completed());
}

TEST(Protocol, NonCompletedResponsesOmitGraphSize) {
  Response response;
  response.id = 7;
  response.status = ResponseStatus::kShed;
  response.detail = "queue_full";
  std::string line = FormatResponse(response);
  EXPECT_EQ(line.find("nodes="), std::string::npos);
  EXPECT_EQ(line.find("edges="), std::string::npos);
  Response parsed;
  ASSERT_TRUE(ParseResponse(line, &parsed));
  EXPECT_EQ(parsed.status, ResponseStatus::kShed);
  EXPECT_FALSE(parsed.completed());
}

TEST(Protocol, DetailWithSpacesIsSanitized) {
  Response response;
  response.id = 1;
  response.status = ResponseStatus::kError;
  response.detail = "two words=here";
  std::string line = FormatResponse(response);
  Response parsed;
  ASSERT_TRUE(ParseResponse(line, &parsed)) << line;
  EXPECT_EQ(parsed.detail, "two_words_here");
}

TEST(Protocol, EveryStatusHasAStableWireName) {
  for (ResponseStatus status :
       {ResponseStatus::kOk, ResponseStatus::kDegraded, ResponseStatus::kShed,
        ResponseStatus::kDeadlineExceeded, ResponseStatus::kError}) {
    Response response;
    response.id = 1;
    response.status = status;
    Response parsed;
    ASSERT_TRUE(ParseResponse(FormatResponse(response), &parsed))
        << StatusName(status);
    EXPECT_EQ(parsed.status, status);
  }
}

}  // namespace
}  // namespace cpgan::serve
