// Concurrent model hot-reload: N client threads generate through the server
// while the registry repeatedly swaps the model underneath them. Asserts no
// torn reads (every response completes from a coherent model) and bitwise
// determinism per seed — every swap installs weights from the same
// checkpoint, so a fixed-seed request must produce the identical edge list
// no matter which model generation served it. This is the designated TSan
// target of the serve suite (docs/TESTING.md).

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/registry.h"
#include "serve/server.h"
#include "tests/serve/serve_test_util.h"

namespace cpgan::serve {
namespace {

TEST(RegistryReload, GenerateStaysCoherentAcrossHotSwaps) {
  ModelRegistry registry;
  std::string error;
  ASSERT_TRUE(registry.AddModel(ServeTestSpec(/*warm_load=*/true), &error))
      << error;
  uint64_t initial_version = registry.Find("default")->version();

  ServerOptions options;
  options.num_workers = 2;
  options.queue_capacity = 16;
  Server server(&registry, options);
  server.Start();

  std::string dir = ServeTempDir("registry_reload");
  constexpr int kClients = 3;
  constexpr int kPerClient = 4;
  constexpr int kReloads = 4;
  std::atomic<int> failures{0};

  std::thread reloader([&] {
    util::BackoffPolicy backoff;
    backoff.initial_delay_ms = 0.1;
    for (int i = 0; i < kReloads; ++i) {
      std::string reload_error;
      if (!registry.Reload("default", ServeTestCheckpoint(), backoff,
                           &reload_error)) {
        failures.fetch_add(1);
      }
    }
  });

  std::vector<std::vector<Response>> responses(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        Request request;
        request.seed = 33;  // fixed: outputs must be identical
        request.out = dir + "/c" + std::to_string(c) + "_" +
                      std::to_string(i) + ".txt";
        responses[c].push_back(server.Submit(request));
      }
    });
  }
  for (std::thread& client : clients) client.join();
  reloader.join();
  server.Stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(registry.Find("default")->version(),
            initial_version + kReloads);

  // Every request completed from a coherent model, and all outputs are
  // bitwise identical regardless of which model generation served them.
  std::string reference;
  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(responses[c].size(), static_cast<size_t>(kPerClient));
    for (int i = 0; i < kPerClient; ++i) {
      const Response& response = responses[c][i];
      ASSERT_EQ(response.status, ResponseStatus::kOk) << response.detail;
      std::string contents = SlurpFile(dir + "/c" + std::to_string(c) + "_" +
                                       std::to_string(i) + ".txt");
      ASSERT_FALSE(contents.empty());
      if (reference.empty()) {
        reference = contents;
      } else {
        EXPECT_EQ(contents, reference)
            << "torn or non-deterministic output at client " << c
            << " request " << i;
      }
    }
  }
}

TEST(RegistryReload, SnapshotsOutliveTheSwap) {
  // A reader's shared_ptr snapshot must stay valid and immutable while a
  // reload replaces the registry entry under it.
  ModelRegistry registry;
  std::string error;
  ASSERT_TRUE(registry.AddModel(ServeTestSpec(/*warm_load=*/true), &error))
      << error;
  std::shared_ptr<const ServableModel> snapshot = registry.Find("default");
  ASSERT_NE(snapshot, nullptr);
  int observed_nodes = snapshot->observed_nodes();

  util::BackoffPolicy backoff;
  backoff.initial_delay_ms = 0.1;
  ASSERT_TRUE(
      registry.Reload("default", ServeTestCheckpoint(), backoff, &error))
      << error;
  std::shared_ptr<const ServableModel> fresh = registry.Find("default");
  EXPECT_NE(snapshot.get(), fresh.get());
  EXPECT_GT(fresh->version(), snapshot->version());

  // The old snapshot still decodes correctly after being replaced.
  core::GenerateControls controls;
  util::Rng rng(7);
  graph::Graph generated(0);
  {
    std::lock_guard<std::mutex> kernel(KernelLock());
    generated = snapshot->Generate(controls, rng);
  }
  EXPECT_EQ(generated.num_nodes(), observed_nodes);
}

}  // namespace
}  // namespace cpgan::serve
