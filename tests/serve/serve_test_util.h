#ifndef CPGAN_TESTS_SERVE_SERVE_TEST_UTIL_H_
#define CPGAN_TESTS_SERVE_SERVE_TEST_UTIL_H_

#include <dirent.h>

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "core/cpgan.h"
#include "data/synthetic.h"
#include "serve/registry.h"
#include "train/checkpoint.h"
#include "util/check.h"
#include "util/fileio.h"
#include "util/rng.h"

namespace cpgan::serve {

/// Small community graph shared by the serve suites (kept tiny so each test
/// binary trains its warm model in about a second).
inline graph::Graph ServeTestGraph() {
  data::CommunityGraphParams params;
  params.num_nodes = 100;
  params.num_edges = 320;
  params.num_communities = 5;
  params.intra_fraction = 0.9;
  params.degree_exponent = 2.6;
  util::Rng rng(3);
  return data::MakeCommunityGraph(params, rng);
}

inline core::CpganConfig ServeTestConfig() {
  core::CpganConfig config;
  config.epochs = 12;
  config.subgraph_size = 64;
  config.hidden_dim = 12;
  config.latent_dim = 6;
  config.feature_dim = 5;
  config.seed = 11;
  return config;
}

/// Fresh (emptied) per-test temp directory.
inline std::string ServeTempDir(const char* name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  util::MakeDirs(dir);
  if (DIR* d = ::opendir(dir.c_str())) {
    while (struct dirent* entry = ::readdir(d)) {
      std::remove((dir + "/" + entry->d_name).c_str());
    }
    ::closedir(d);
  }
  return dir;
}

/// Trains the shared config once per process and returns the final training
/// checkpoint — the warm-load input for registry tests. Deterministic: the
/// weights inside are bitwise identical to an in-process Fit of the same
/// config (checkpoint writes draw from a separate RNG stream).
inline const std::string& ServeTestCheckpoint() {
  static const std::string* path = [] {
    std::string dir = ServeTempDir("serve_shared_ckpt");
    core::CpganConfig config = ServeTestConfig();
    config.checkpoint_dir = dir;
    config.checkpoint_every = 1000;  // only the final checkpoint
    core::Cpgan model(config);
    model.Fit(ServeTestGraph());
    std::string latest = train::LatestCheckpoint(dir);
    CPGAN_CHECK_MSG(!latest.empty(), "serve test checkpoint missing");
    return new std::string(latest);
  }();
  return *path;
}

/// Spec for the default warm model, optionally warm-loading the shared
/// checkpoint instead of training in-process.
inline ModelSpec ServeTestSpec(bool warm_load = false) {
  ModelSpec spec;
  spec.name = "default";
  spec.config = ServeTestConfig();
  spec.graph = ServeTestGraph();
  if (warm_load) spec.checkpoint = ServeTestCheckpoint();
  return spec;
}

/// Registry with the default model, built once per process (in-process
/// training path).
inline ModelRegistry& SharedServeRegistry() {
  static ModelRegistry* registry = [] {
    auto* r = new ModelRegistry();
    std::string error;
    CPGAN_CHECK_MSG(r->AddModel(ServeTestSpec(), &error), error.c_str());
    return r;
  }();
  return *registry;
}

/// Reads a whole file; empty string when missing.
inline std::string SlurpFile(const std::string& path) {
  std::string contents;
  if (!util::ReadFileToString(path, &contents)) return "";
  return contents;
}

}  // namespace cpgan::serve

#endif  // CPGAN_TESTS_SERVE_SERVE_TEST_UTIL_H_
