// STATS round-trip and the serve-side observability plane: the extended
// STATS payload (slo + exporter blocks) parses as JSON and is consistent
// with the server's own counters, the server-owned exporter writes both
// sinks and publishes serve.slo.* gauges, and SLO accounting distinguishes
// available from failed outcomes. ASan/TSan targets via -DCPGAN_SANITIZE.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "tests/serve/serve_test_util.h"

namespace cpgan::serve {
namespace {

/// Parses the `stats={...}` JSON payload out of a STATS response line.
obs::JsonValue ParseStatsPayload(const std::string& line) {
  const std::string marker = " stats=";
  size_t at = line.find(marker);
  EXPECT_NE(at, std::string::npos) << line;
  obs::JsonValue payload;
  std::string error;
  EXPECT_TRUE(obs::JsonValue::Parse(line.substr(at + marker.size()), &payload,
                                    &error))
      << error << " in: " << line;
  return payload;
}

TEST(StatsTest, StatsRoundTripMatchesServerCounters) {
  ServerOptions options;
  options.num_workers = 2;
  options.slo.latency_target_ms = 60000.0;  // nothing is "slow" in-test
  Server server(&SharedServeRegistry(), options);
  server.Start();

  Request request;
  request.seed = 21;
  for (int i = 0; i < 3; ++i) {
    Response response = server.Submit(request);
    ASSERT_EQ(response.status, ResponseStatus::kOk) << response.detail;
  }

  bool quit = false;
  std::string line = server.HandleLine("STATS\n", &quit);
  EXPECT_FALSE(quit);
  obs::JsonValue payload = ParseStatsPayload(line);

  EXPECT_DOUBLE_EQ(payload.NumberOr("received", -1.0), 3.0);
  EXPECT_DOUBLE_EQ(payload.NumberOr("ok", -1.0), 3.0);
  EXPECT_DOUBLE_EQ(payload.NumberOr("queue_depth", -1.0), 0.0);

  const obs::JsonValue* slo = payload.Find("slo");
  ASSERT_NE(slo, nullptr) << line;
  EXPECT_DOUBLE_EQ(slo->NumberOr("window_total", -1.0), 3.0);
  EXPECT_DOUBLE_EQ(slo->NumberOr("availability", -1.0), 1.0);
  EXPECT_DOUBLE_EQ(slo->NumberOr("latency_compliance", -1.0), 1.0);
  EXPECT_DOUBLE_EQ(slo->NumberOr("availability_burn_rate", -1.0), 0.0);
  EXPECT_GT(slo->NumberOr("p50_ms", -1.0), 0.0);
  EXPECT_GE(slo->NumberOr("p99_ms", 0.0), slo->NumberOr("p50_ms", 0.0));

  const obs::JsonValue* exporter = payload.Find("exporter");
  ASSERT_NE(exporter, nullptr) << line;
  // No sink paths configured: the exporter never spawns.
  EXPECT_FALSE(exporter->Find("running")->bool_value());

  // The same numbers through the typed API.
  obs::SloSnapshot snap = server.SloStatus();
  EXPECT_EQ(snap.total, 3u);
  EXPECT_DOUBLE_EQ(snap.availability, 1.0);
  server.Stop();
}

TEST(StatsTest, SloCountsFailuresAgainstAvailability) {
  ServerOptions options;
  options.num_workers = 1;
  options.slo.availability_objective = 0.5;  // 50% budget, easy math
  Server server(&SharedServeRegistry(), options);
  server.Start();

  Request ok_request;
  ok_request.seed = 5;
  ASSERT_EQ(server.Submit(ok_request).status, ResponseStatus::kOk);

  Request failing;
  failing.model = "no_such_model";
  ASSERT_EQ(server.Submit(failing).status, ResponseStatus::kError);

  obs::SloSnapshot snap = server.SloStatus();
  EXPECT_EQ(snap.total, 2u);
  EXPECT_EQ(snap.errors, 1u);
  EXPECT_DOUBLE_EQ(snap.availability, 0.5);
  EXPECT_DOUBLE_EQ(snap.availability_burn_rate, 1.0);  // 50% bad / 50% budget
  server.Stop();
}

TEST(StatsTest, ServerOwnedExporterWritesSinksAndSloGauges) {
  std::string dir = ServeTempDir("stats_exporter");
  ServerOptions options;
  options.num_workers = 2;
  options.exporter.prometheus_path = dir + "/serve.prom";
  options.exporter.jsonl_path = dir + "/serve.jsonl";
  options.exporter.period_ms = 3600 * 1000.0;  // only the shutdown flush
  Server server(&SharedServeRegistry(), options);
  server.Start();
  ASSERT_NE(server.exporter(), nullptr);
  EXPECT_TRUE(server.exporter()->running());

  Request request;
  request.seed = 33;
  ASSERT_EQ(server.Submit(request).status, ResponseStatus::kOk);

  bool quit = false;
  obs::JsonValue payload =
      ParseStatsPayload(server.HandleLine("STATS\n", &quit));
  EXPECT_TRUE(payload.Find("exporter")->Find("running")->bool_value());

  server.Stop();  // final flush happens here
  EXPECT_EQ(server.exporter(), nullptr);

  // Prometheus sink: complete exposition including serve counters and the
  // SLO gauges published on the flush tick.
  std::string prom = SlurpFile(dir + "/serve.prom");
  ASSERT_FALSE(prom.empty());
  EXPECT_NE(prom.find("serve_requests_total "), std::string::npos);
  EXPECT_NE(prom.find("serve_latency_ns_bucket{le=\"+Inf\"} "),
            std::string::npos);
  EXPECT_NE(prom.find("serve_slo_availability "), std::string::npos);
  EXPECT_NE(prom.find("serve_slo_p99_ms "), std::string::npos);

  // JSONL sink: at least the shutdown snapshot, carrying the same gauges.
  std::string jsonl = SlurpFile(dir + "/serve.jsonl");
  ASSERT_FALSE(jsonl.empty());
  size_t line_end = jsonl.find('\n');
  ASSERT_NE(line_end, std::string::npos);
  obs::JsonValue snapshot;
  std::string error;
  ASSERT_TRUE(
      obs::JsonValue::Parse(jsonl.substr(0, line_end), &snapshot, &error))
      << error;
  const obs::JsonValue* gauges = snapshot.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_GE(gauges->NumberOr("serve.slo.window_total", -1.0), 1.0);
}

TEST(StatsTest, StatsLineStableAcrossRepeatedQueries) {
  ServerOptions options;
  Server server(&SharedServeRegistry(), options);
  server.Start();
  bool quit = false;
  obs::JsonValue first =
      ParseStatsPayload(server.HandleLine("STATS\n", &quit));
  obs::JsonValue second =
      ParseStatsPayload(server.HandleLine("STATS\n", &quit));
  // No traffic between queries: identical counters and an empty SLO window.
  EXPECT_DOUBLE_EQ(first.NumberOr("received", -1.0),
                   second.NumberOr("received", -2.0));
  EXPECT_DOUBLE_EQ(second.Find("slo")->NumberOr("window_total", -1.0), 0.0);
  server.Stop();
}

}  // namespace
}  // namespace cpgan::serve
