// Property-style sweeps: randomized cross-checks of independent
// implementations (brute force vs optimized, sparse vs dense, generator
// statistics vs their analytic targets) across many seeds via TEST_P.

#include <algorithm>
#include <cmath>
#include <queue>

#include <gtest/gtest.h>

#include "community/louvain.h"
#include "community/metrics.h"
#include "data/synthetic.h"
#include "generators/chung_lu.h"
#include "generators/er.h"
#include "graph/algorithms.h"
#include "graph/graph.h"
#include "graph/stats.h"
#include "tensor/ops.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace cpgan {
namespace {

graph::Graph RandomGraph(int n, int m, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<graph::Edge> edges;
  for (int i = 0; i < m; ++i) {
    edges.emplace_back(static_cast<int>(rng.UniformInt(n)),
                       static_cast<int>(rng.UniformInt(n)));
  }
  return graph::Graph(n, edges);
}

class SeededPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededPropertyTest, TriangleCountMatchesBruteForce) {
  graph::Graph g = RandomGraph(25, 80, GetParam());
  int64_t brute = 0;
  for (int a = 0; a < g.num_nodes(); ++a) {
    for (int b = a + 1; b < g.num_nodes(); ++b) {
      if (!g.HasEdge(a, b)) continue;
      for (int c = b + 1; c < g.num_nodes(); ++c) {
        if (g.HasEdge(a, c) && g.HasEdge(b, c)) ++brute;
      }
    }
  }
  EXPECT_EQ(graph::CountTriangles(g), brute);
}

TEST_P(SeededPropertyTest, BfsMatchesDijkstraOnUnitWeights) {
  graph::Graph g = RandomGraph(30, 60, GetParam() + 100);
  std::vector<int> bfs = graph::BfsDistances(g, 0);
  // Reference: uniform-cost search.
  std::vector<int> dist(g.num_nodes(), -1);
  std::priority_queue<std::pair<int, int>, std::vector<std::pair<int, int>>,
                      std::greater<>>
      pq;
  pq.push({0, 0});
  dist[0] = 0;
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (int v : g.neighbors(u)) {
      if (dist[v] < 0 || dist[v] > d + 1) {
        dist[v] = d + 1;
        pq.push({dist[v], v});
      }
    }
  }
  EXPECT_EQ(bfs, dist);
}

TEST_P(SeededPropertyTest, SparseDenseSpmmAgreeOnRandomMatrices) {
  util::Rng rng(GetParam() + 200);
  std::vector<tensor::Triplet> triplets;
  for (int i = 0; i < 40; ++i) {
    triplets.push_back({static_cast<int>(rng.UniformInt(12)),
                        static_cast<int>(rng.UniformInt(9)),
                        static_cast<float>(rng.Normal())});
  }
  tensor::SparseMatrix sparse(12, 9, triplets);
  tensor::Matrix dense =
      cpgan::testing::TestMatrix(9, 5, 1.0f, GetParam() + 300);
  tensor::Matrix via_sparse = sparse.Multiply(dense);
  tensor::Matrix via_dense = tensor::Matmul(sparse.ToDense(), dense);
  via_dense.Axpy(-1.0f, via_sparse);
  EXPECT_LT(via_dense.Norm(), 1e-4f);
}

TEST_P(SeededPropertyTest, ModularityOfLouvainBeatsRandomPartition) {
  data::CommunityGraphParams params;
  params.num_nodes = 120;
  params.num_edges = 420;
  params.num_communities = 6;
  util::Rng build(GetParam() + 400);
  graph::Graph g = data::MakeCommunityGraph(params, build);
  util::Rng rng(GetParam() + 500);
  community::LouvainResult louvain = community::Louvain(g, rng);
  std::vector<int> random_labels(g.num_nodes());
  for (int& label : random_labels) {
    label = static_cast<int>(rng.UniformInt(6));
  }
  double q_random =
      community::Modularity(g, community::Partition(random_labels));
  EXPECT_GT(louvain.modularity, q_random + 0.1);
}

TEST_P(SeededPropertyTest, NmiInvariantUnderLabelPermutation) {
  util::Rng rng(GetParam() + 600);
  std::vector<int> a(50);
  std::vector<int> b(50);
  for (int i = 0; i < 50; ++i) {
    a[i] = static_cast<int>(rng.UniformInt(5));
    b[i] = static_cast<int>(rng.UniformInt(4));
  }
  community::Partition pa(a);
  community::Partition pb(b);
  // Permute a's labels.
  std::vector<int> perm = {4, 2, 0, 3, 1};
  std::vector<int> a_perm(50);
  for (int i = 0; i < 50; ++i) a_perm[i] = perm[pa.label(i)];
  community::Partition pa_perm(a_perm);
  EXPECT_NEAR(community::NormalizedMutualInformation(pa, pb),
              community::NormalizedMutualInformation(pa_perm, pb), 1e-12);
  EXPECT_NEAR(community::AdjustedRandIndex(pa, pb),
              community::AdjustedRandIndex(pa_perm, pb), 1e-12);
}

TEST_P(SeededPropertyTest, ErGeneratorDegreeMeanMatchesAnalytic) {
  generators::ErGenerator er(400, 0.02);
  util::Rng rng(GetParam() + 700);
  graph::Graph g = er.Generate(rng);
  // E[degree] = p (n - 1) = 0.02 * 399 = 7.98.
  EXPECT_NEAR(g.MeanDegree(), 7.98, 1.0);
}

TEST_P(SeededPropertyTest, ChungLuPreservesDegreeOrdering) {
  // Nodes with much larger target degrees should receive larger generated
  // degrees on average.
  std::vector<int> degrees(100, 2);
  for (int i = 0; i < 10; ++i) degrees[i] = 20;
  generators::ChungLuGenerator gen(degrees);
  util::Rng rng(GetParam() + 800);
  graph::Graph g = gen.Generate(rng);
  double hub_mean = 0.0;
  double leaf_mean = 0.0;
  for (int i = 0; i < 10; ++i) hub_mean += g.degree(i);
  for (int i = 10; i < 100; ++i) leaf_mean += g.degree(i);
  hub_mean /= 10.0;
  leaf_mean /= 90.0;
  EXPECT_GT(hub_mean, 2.0 * leaf_mean);
}

TEST_P(SeededPropertyTest, SoftmaxRowsSumToOneOnRandomInput) {
  tensor::Tensor x = tensor::Constant(
      cpgan::testing::TestMatrix(7, 11, 3.0f, GetParam() + 900));
  tensor::Matrix y = tensor::SoftmaxRows(x).value();
  for (int r = 0; r < 7; ++r) {
    double total = 0.0;
    for (int c = 0; c < 11; ++c) {
      EXPECT_GE(y.At(r, c), 0.0f);
      total += y.At(r, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
}

TEST_P(SeededPropertyTest, GiniWithinUnitInterval) {
  graph::Graph g = RandomGraph(60, 150, GetParam() + 1000);
  double gini = graph::GiniCoefficient(g.Degrees());
  EXPECT_GE(gini, 0.0);
  EXPECT_LE(gini, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededPropertyTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace cpgan
