#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "generators/ba.h"
#include "generators/bter.h"
#include "generators/er.h"
#include "generators/mmsb.h"
#include "generators/registry.h"
#include "generators/sbm.h"
#include "generators/ws.h"
#include "graph/algorithms.h"
#include "graph/stats.h"
#include "util/rng.h"

namespace cpgan::generators {
namespace {

graph::Graph TestTarget(uint64_t seed = 1) {
  data::CommunityGraphParams params;
  params.num_nodes = 250;
  params.num_edges = 900;
  params.num_communities = 10;
  util::Rng rng(seed);
  return data::MakeCommunityGraph(params, rng);
}

// Parameterized sweep over every registered traditional generator.
class AllGeneratorsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllGeneratorsTest, FitGeneratePreservesNodeCount) {
  auto gen = MakeTraditionalGenerator(GetParam());
  ASSERT_NE(gen, nullptr);
  EXPECT_EQ(gen->name(), GetParam());
  graph::Graph target = TestTarget();
  util::Rng rng(2);
  gen->Fit(target, rng);
  graph::Graph out = gen->Generate(rng);
  EXPECT_EQ(out.num_nodes(), target.num_nodes());
}

TEST_P(AllGeneratorsTest, EdgeCountRoughlyMatches) {
  auto gen = MakeTraditionalGenerator(GetParam());
  graph::Graph target = TestTarget();
  util::Rng rng(3);
  gen->Fit(target, rng);
  graph::Graph out = gen->Generate(rng);
  double ratio = static_cast<double>(out.num_edges()) /
                 static_cast<double>(target.num_edges());
  EXPECT_GT(ratio, 0.4) << GetParam();
  EXPECT_LT(ratio, 2.5) << GetParam();
}

TEST_P(AllGeneratorsTest, OutputIsSimpleGraph) {
  auto gen = MakeTraditionalGenerator(GetParam());
  graph::Graph target = TestTarget();
  util::Rng rng(4);
  gen->Fit(target, rng);
  graph::Graph out = gen->Generate(rng);
  for (const auto& [u, v] : out.Edges()) {
    EXPECT_NE(u, v);
    EXPECT_TRUE(u >= 0 && u < out.num_nodes());
    EXPECT_TRUE(v >= 0 && v < out.num_nodes());
  }
}

INSTANTIATE_TEST_SUITE_P(Registry, AllGeneratorsTest,
                         ::testing::ValuesIn(TraditionalGeneratorNames()));

TEST(RegistryTest, UnknownNameReturnsNull) {
  EXPECT_EQ(MakeTraditionalGenerator("NoSuchModel"), nullptr);
}

TEST(ErTest, DensityMatchesParameter) {
  ErGenerator gen(300, 0.05);
  util::Rng rng(5);
  graph::Graph g = gen.Generate(rng);
  double pairs = 0.5 * 300 * 299;
  EXPECT_NEAR(g.num_edges() / pairs, 0.05, 0.01);
}

TEST(ErTest, FitRecoversDensity) {
  ErGenerator source(200, 0.1);
  util::Rng rng(6);
  graph::Graph g = source.Generate(rng);
  ErGenerator fitted;
  fitted.Fit(g, rng);
  EXPECT_NEAR(fitted.edge_probability(), 0.1, 0.02);
}

TEST(ErTest, ExtremeProbabilities) {
  util::Rng rng(7);
  ErGenerator empty(20, 0.0);
  EXPECT_EQ(empty.Generate(rng).num_edges(), 0);
  ErGenerator full(20, 1.0);
  EXPECT_EQ(full.Generate(rng).num_edges(), 190);
}

TEST(BaTest, MinimumDegreeRespected) {
  BaGenerator gen(200, 3);
  util::Rng rng(8);
  graph::Graph g = gen.Generate(rng);
  for (int v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE(g.degree(v), 3);
  }
}

TEST(BaTest, ProducesSkewedDegrees) {
  BaGenerator gen(500, 2);
  util::Rng rng(9);
  graph::Graph g = gen.Generate(rng);
  EXPECT_GT(graph::GiniCoefficient(g.Degrees()), 0.2);
}

TEST(WsTest, NoRewireGivesRingLattice) {
  WsGenerator gen(40, 4, 0.0);
  util::Rng rng(10);
  graph::Graph g = gen.Generate(rng);
  for (int v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(g.degree(v), 4);
  }
  EXPECT_GT(graph::AverageClusteringCoefficient(g), 0.3);
}

TEST(SbmTest, BlockCapRespected) {
  SbmGenerator gen;
  gen.set_max_blocks(4);
  graph::Graph target = TestTarget();
  util::Rng rng(11);
  gen.Fit(target, rng);
  EXPECT_LE(gen.partition().num_communities(), 4);
}

TEST(BterTest, PreservesClusteringBetterThanEr) {
  // Target with strong clustering.
  data::CommunityGraphParams params;
  params.num_nodes = 200;
  params.num_edges = 900;
  params.num_communities = 10;
  params.triangle_fraction = 0.3;
  util::Rng build(12);
  graph::Graph target = data::MakeCommunityGraph(params, build);

  util::Rng rng(13);
  BterGenerator bter;
  bter.Fit(target, rng);
  graph::Graph bter_out = bter.Generate(rng);
  ErGenerator er;
  er.Fit(target, rng);
  graph::Graph er_out = er.Generate(rng);
  EXPECT_GT(graph::AverageClusteringCoefficient(bter_out),
            graph::AverageClusteringCoefficient(er_out));
}

TEST(MmsbTest, FeasibilityThreshold) {
  MmsbGenerator gen;
  EXPECT_GT(MmsbGenerator::max_feasible_nodes(), 1000);
}

TEST(GeneratorDeterminismTest, SameSeedSameGraph) {
  for (const std::string& name : TraditionalGeneratorNames()) {
    auto gen_a = MakeTraditionalGenerator(name);
    auto gen_b = MakeTraditionalGenerator(name);
    graph::Graph target = TestTarget();
    util::Rng rng_a(77);
    util::Rng rng_b(77);
    gen_a->Fit(target, rng_a);
    gen_b->Fit(target, rng_b);
    graph::Graph out_a = gen_a->Generate(rng_a);
    graph::Graph out_b = gen_b->Generate(rng_b);
    EXPECT_EQ(out_a.Edges(), out_b.Edges()) << name;
  }
}

}  // namespace
}  // namespace cpgan::generators
