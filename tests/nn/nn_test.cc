#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "nn/gcn.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "nn/pairnorm.h"
#include "nn/topk_pool.h"
#include "tests/test_util.h"

namespace cpgan::nn {
namespace {

namespace t = cpgan::tensor;
using cpgan::testing::ExpectGradCheck;
using cpgan::testing::TestMatrix;

TEST(LinearTest, ShapesAndBias) {
  util::Rng rng(1);
  Linear layer(4, 3, rng);
  t::Tensor x = t::Constant(TestMatrix(5, 4, 1.0f, 1));
  t::Tensor y = layer.Forward(x);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 3);
  EXPECT_EQ(layer.ParameterCount(), 4 * 3 + 3);
}

TEST(LinearTest, NoBiasVariant) {
  util::Rng rng(2);
  Linear layer(4, 3, rng, /*bias=*/false);
  EXPECT_EQ(layer.ParameterCount(), 4 * 3);
}

TEST(LinearTest, GradCheckThroughLayer) {
  util::Rng rng(3);
  Linear layer(3, 2, rng);
  t::Tensor x = t::Constant(TestMatrix(4, 3, 1.0f, 2));
  for (t::Tensor& p : layer.Parameters()) {
    ExpectGradCheck(p, [&] { return t::SumAll(t::Square(layer.Forward(x))); });
  }
}

TEST(MlpTest, ForwardShapeAndActivation) {
  util::Rng rng(4);
  Mlp mlp({6, 8, 2}, rng, Activation::kRelu, Activation::kSigmoid);
  t::Tensor x = t::Constant(TestMatrix(3, 6, 1.0f, 3));
  t::Tensor y = mlp.Forward(x);
  EXPECT_EQ(y.rows(), 3);
  EXPECT_EQ(y.cols(), 2);
  for (int64_t i = 0; i < y.value().size(); ++i) {
    EXPECT_GT(y.value().data()[i], 0.0f);
    EXPECT_LT(y.value().data()[i], 1.0f);
  }
  EXPECT_EQ(mlp.in_features(), 6);
  EXPECT_EQ(mlp.out_features(), 2);
}

TEST(MlpTest, ParameterRegistryIncludesAllLayers) {
  util::Rng rng(5);
  Mlp mlp({4, 8, 8, 1}, rng);
  EXPECT_EQ(mlp.ParameterCount(), 4 * 8 + 8 + 8 * 8 + 8 + 8 * 1 + 1);
}

TEST(GcnTest, SparseAndDenseAgree) {
  util::Rng rng(6);
  GcnConv conv(5, 7, rng);
  auto sparse = std::make_shared<t::SparseMatrix>(
      t::NormalizedAdjacency(4, {{0, 1}, {1, 2}, {2, 3}}));
  t::Tensor x = t::Constant(TestMatrix(4, 5, 1.0f, 4));
  t::Tensor dense_a = t::Constant(sparse->ToDense());
  t::Tensor from_sparse = conv.Forward(sparse, x);
  t::Tensor from_dense = conv.ForwardDense(dense_a, x);
  t::Matrix diff = from_sparse.value();
  diff.Axpy(-1.0f, from_dense.value());
  EXPECT_LT(diff.Norm(), 1e-4f);
}

TEST(GcnTest, GradCheckThroughSparseConv) {
  util::Rng rng(7);
  GcnConv conv(3, 2, rng);
  auto sparse = std::make_shared<t::SparseMatrix>(
      t::NormalizedAdjacency(3, {{0, 1}, {1, 2}}));
  t::Tensor x = t::Constant(TestMatrix(3, 3, 1.0f, 5));
  for (t::Tensor& p : conv.Parameters()) {
    ExpectGradCheck(p, [&] {
      return t::SumAll(t::Square(conv.Forward(sparse, x)));
    });
  }
}

TEST(GcnTest, RowNormalizeAdjacencyRowsSumToOne) {
  t::Matrix a(3, 3);
  a.At(0, 1) = 2.0f;
  a.At(1, 0) = 2.0f;
  a.At(1, 2) = 1.0f;
  a.At(2, 1) = 1.0f;
  t::Tensor norm = RowNormalizeAdjacency(t::Constant(a));
  for (int r = 0; r < 3; ++r) {
    double sum = 0.0;
    for (int c = 0; c < 3; ++c) sum += norm.value().At(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
}

TEST(PairNormTest, RowNormsEqualScale) {
  t::Tensor x = t::Constant(TestMatrix(6, 5, 2.0f, 6));
  t::Tensor y = PairNorm(x, 2.5f);
  for (int r = 0; r < y.rows(); ++r) {
    double norm = 0.0;
    for (int c = 0; c < y.cols(); ++c) {
      norm += static_cast<double>(y.value().At(r, c)) * y.value().At(r, c);
    }
    EXPECT_NEAR(std::sqrt(norm), 2.5, 1e-2);
  }
}

TEST(PairNormTest, CentersColumns) {
  t::Tensor x = t::Constant(TestMatrix(50, 4, 1.0f, 7));
  t::Tensor y = PairNorm(x);
  // After centering (pre-normalization) column means are 0; normalization
  // perturbs them, but they must be much smaller than the feature scale.
  for (int c = 0; c < 4; ++c) {
    double mean = 0.0;
    for (int r = 0; r < 50; ++r) mean += y.value().At(r, c);
    EXPECT_LT(std::fabs(mean / 50.0), 0.2);
  }
}

TEST(PairNormTest, GradCheck) {
  t::Tensor x(TestMatrix(4, 3, 1.0f, 8), true);
  ExpectGradCheck(x, [&] { return t::SumAll(t::Square(PairNorm(x))); });
}

TEST(GruTest, ShapesAndStateUpdate) {
  util::Rng rng(8);
  GruCell gru(4, 6, rng);
  t::Tensor x = t::Constant(TestMatrix(3, 4, 1.0f, 9));
  t::Tensor h = gru.InitialState(3);
  EXPECT_EQ(h.rows(), 3);
  EXPECT_EQ(h.cols(), 6);
  t::Tensor h1 = gru.Forward(x, h);
  EXPECT_EQ(h1.rows(), 3);
  EXPECT_EQ(h1.cols(), 6);
  // Output is bounded by tanh/sigmoid composition.
  for (int64_t i = 0; i < h1.value().size(); ++i) {
    EXPECT_LT(std::fabs(h1.value().data()[i]), 1.0f);
  }
}

TEST(GruTest, ZeroInputKeepsStateBounded) {
  util::Rng rng(9);
  GruCell gru(2, 3, rng);
  t::Tensor x = t::Constant(t::Matrix(1, 2));
  t::Tensor h = gru.InitialState(1);
  for (int step = 0; step < 50; ++step) h = gru.Forward(x, h);
  EXPECT_LT(h.value().Norm(), 10.0f);
  EXPECT_TRUE(std::isfinite(h.value().Norm()));
}

TEST(GruTest, GradCheckThroughTwoSteps) {
  util::Rng rng(10);
  GruCell gru(3, 4, rng);
  t::Tensor x1 = t::Constant(TestMatrix(2, 3, 1.0f, 10));
  t::Tensor x2 = t::Constant(TestMatrix(2, 3, 1.0f, 11));
  for (t::Tensor& p : gru.Parameters()) {
    ExpectGradCheck(p, [&] {
      t::Tensor h = gru.Forward(x2, gru.Forward(x1, gru.InitialState(2)));
      return t::SumAll(t::Square(h));
    });
  }
}

}  // namespace
}  // namespace cpgan::nn

namespace cpgan::nn {
namespace {

namespace tk = cpgan::tensor;

TEST(TopKPoolTest, KeepsHighestScoringNodes) {
  util::Rng rng(20);
  TopKPool pool(3, 0.5, rng);
  tk::Tensor x = tk::Constant(cpgan::testing::TestMatrix(8, 3, 1.0f, 30));
  tk::Tensor a = tk::Constant(tk::Matrix(8, 8, 0.1f));
  TopKPoolOutput out = pool.Forward(x, a);
  EXPECT_EQ(out.kept.size(), 4u);
  EXPECT_EQ(out.features.rows(), 4);
  EXPECT_EQ(out.features.cols(), 3);
  EXPECT_EQ(out.adjacency.rows(), 4);
  EXPECT_EQ(out.adjacency.cols(), 4);
}

TEST(TopKPoolTest, AdjacencyIsInducedSubmatrix) {
  util::Rng rng(21);
  TopKPool pool(2, 0.5, rng);
  tk::Tensor x = tk::Constant(cpgan::testing::TestMatrix(6, 2, 1.0f, 31));
  tk::Matrix adj(6, 6);
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) adj.At(i, j) = static_cast<float>(10 * i + j);
  }
  TopKPoolOutput out = pool.Forward(x, tk::Constant(adj));
  for (size_t a = 0; a < out.kept.size(); ++a) {
    for (size_t b = 0; b < out.kept.size(); ++b) {
      EXPECT_FLOAT_EQ(out.adjacency.value().At(static_cast<int>(a),
                                               static_cast<int>(b)),
                      adj.At(out.kept[a], out.kept[b]));
    }
  }
}

TEST(TopKPoolTest, GradientsFlowThroughGate) {
  util::Rng rng(22);
  TopKPool pool(3, 0.5, rng);
  tk::Tensor x(cpgan::testing::TestMatrix(8, 3, 1.0f, 32), true);
  tk::Tensor a = tk::Constant(tk::Matrix(8, 8, 0.1f));
  TopKPoolOutput out = pool.Forward(x, a);
  tk::Backward(tk::SumAll(tk::Square(out.features)));
  EXPECT_GT(x.grad().Norm(), 0.0f);
  for (tk::Tensor& p : pool.Parameters()) {
    EXPECT_GT(p.grad().Norm(), 0.0f);
  }
}

TEST(TopKPoolTest, FullRatioKeepsEveryNode) {
  util::Rng rng(23);
  TopKPool pool(2, 1.0, rng);
  tk::Tensor x = tk::Constant(cpgan::testing::TestMatrix(5, 2, 1.0f, 33));
  tk::Tensor a = tk::Constant(tk::Matrix(5, 5, 0.2f));
  EXPECT_EQ(pool.Forward(x, a).kept.size(), 5u);
}

}  // namespace
}  // namespace cpgan::nn
