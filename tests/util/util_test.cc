#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/logging.h"
#include "util/memory_tracker.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table.h"

namespace cpgan::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntRange) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(3);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(4);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(5);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) counts[rng.Categorical(weights)] += 1;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(6);
  std::vector<int> sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(std::unique(sample.begin(), sample.end()), sample.end());
  for (int v : sample) EXPECT_TRUE(v >= 0 && v < 50);
}

TEST(RngTest, WeightedSampleWithoutReplacementPrefersHeavy) {
  Rng rng(7);
  std::vector<double> weights(100, 0.01);
  weights[3] = 100.0;
  int hits = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int> sample = rng.WeightedSampleWithoutReplacement(weights, 5);
    EXPECT_EQ(sample.size(), 5u);
    if (std::find(sample.begin(), sample.end(), 3) != sample.end()) ++hits;
  }
  EXPECT_GT(hits, 190);
}

TEST(RngTest, PoissonMean) {
  Rng rng(8);
  double total = 0.0;
  for (int i = 0; i < 20000; ++i) total += rng.Poisson(4.0);
  EXPECT_NEAR(total / 20000.0, 4.0, 0.1);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(CumulativeSamplerTest, MatchesWeights) {
  Rng rng(9);
  CumulativeSampler sampler({2.0, 0.0, 6.0});
  EXPECT_DOUBLE_EQ(sampler.total_weight(), 8.0);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) counts[sampler.Sample(rng)] += 1;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,,c", ","), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("  x y ", " "), (std::vector<std::string>{"x", "y"}));
  EXPECT_TRUE(Split("", ",").empty());
}

TEST(StringUtilTest, TrimAndJoin) {
  EXPECT_EQ(Trim("  hello \n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringUtilTest, FormatCompact) {
  EXPECT_EQ(FormatCompact(0.00125), "1.25e-03");
  EXPECT_EQ(FormatCompact(15.3), "15.3");
  EXPECT_EQ(FormatCompact(0.410), "0.410");
  EXPECT_EQ(FormatCompact(0.0), "0.000");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("table3", "table"));
  EXPECT_FALSE(StartsWith("tab", "table"));
}

TEST(TableTest, RendersAlignedColumns) {
  Table table({"Model", "NMI"});
  table.AddRow({"SBM", "0.5"});
  table.AddRow("CPGAN", {0.725});
  std::string out = table.Render();
  EXPECT_NE(out.find("Model"), std::string::npos);
  EXPECT_NE(out.find("CPGAN"), std::string::npos);
  EXPECT_NE(out.find("0.725"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2);
}

TEST(TableTest, NanRendersAsOom) {
  Table table({"Model", "NMI"});
  table.AddRow("MMSB", {std::nan("")});
  EXPECT_NE(table.Render().find("OOM"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table table({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.RenderCsv(), "a,b\n1,2\n");
}

TEST(MemoryTrackerTest, TracksPeak) {
  MemoryTracker tracker;
  tracker.Allocate(100);
  tracker.Allocate(200);
  EXPECT_EQ(tracker.live_bytes(), 300);
  EXPECT_EQ(tracker.peak_bytes(), 300);
  tracker.Release(200);
  EXPECT_EQ(tracker.live_bytes(), 100);
  EXPECT_EQ(tracker.peak_bytes(), 300);
  tracker.ResetPeak();
  EXPECT_EQ(tracker.peak_bytes(), 100);
}

TEST(LoggingTest, LevelParsingAndFiltering) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("nonsense"), LogLevel::kInfo);
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  CPGAN_LOG(Info) << "filtered message";
  SetLogLevel(before);
}

}  // namespace
}  // namespace cpgan::util
