// AlignedFloats contract tests: 64-byte alignment of the data pointer and
// exact MemoryTracker accounting of the *rounded* allocation size. The
// serving degradation ladder thresholds on MemoryTracker::BudgetPressure(),
// so padding that was allocated but not reported would let real footprint
// drift above the ladder's view of it.

#include <cstdint>

#include <gtest/gtest.h>

#include "tensor/matrix.h"
#include "util/aligned.h"
#include "util/memory_tracker.h"

namespace cpgan::util {
namespace {

TEST(AlignedFloats, AllocationBytesRoundUpToCacheLines) {
  EXPECT_EQ(AlignedAllocationBytes(0), 0u);
  EXPECT_EQ(AlignedAllocationBytes(1), 64u);
  EXPECT_EQ(AlignedAllocationBytes(64), 64u);
  EXPECT_EQ(AlignedAllocationBytes(65), 128u);
  EXPECT_EQ(AlignedAllocationBytes(9 * sizeof(float)), 64u);   // 3x3 matrix
  EXPECT_EQ(AlignedAllocationBytes(17 * sizeof(float)), 128u);
}

TEST(AlignedFloats, DataPointerIsCacheLineAligned) {
  for (int64_t n : {1, 2, 15, 16, 17, 1000}) {
    AlignedFloats buf;
    buf.assign(n, 1.5f);
    ASSERT_EQ(buf.size(), n);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % kKernelAlignment, 0u);
    for (int64_t i = 0; i < n; ++i) ASSERT_EQ(buf[i], 1.5f);
  }
}

TEST(AlignedFloats, TracksRoundedBytesAndBalancesOnRelease) {
  MemoryTracker& tracker = MemoryTracker::Global();
  const int64_t baseline = tracker.live_bytes();
  {
    // 3x3 = 9 floats = 36 payload bytes, but one whole cache line is
    // reserved — and one whole cache line must be reported.
    tensor::Matrix m(3, 3);
    EXPECT_EQ(tracker.live_bytes(), baseline + 64);
  }
  EXPECT_EQ(tracker.live_bytes(), baseline);
  {
    AlignedFloats buf;
    buf.assign(17, 0.0f);  // 68 payload bytes -> 128 reserved
    EXPECT_EQ(tracker.live_bytes(), baseline + 128);
    buf.clear();
    EXPECT_EQ(tracker.live_bytes(), baseline);
  }
}

TEST(AlignedFloats, CopyAndMoveKeepAccountingBalanced) {
  MemoryTracker& tracker = MemoryTracker::Global();
  const int64_t baseline = tracker.live_bytes();
  {
    AlignedFloats a;
    a.assign(32, 2.0f);  // 128 bytes
    AlignedFloats b = a;  // independent copy: another 128
    EXPECT_EQ(tracker.live_bytes(), baseline + 256);
    AlignedFloats c = std::move(a);  // steals, no new allocation
    EXPECT_EQ(tracker.live_bytes(), baseline + 256);
    EXPECT_EQ(c.size(), 32);
    EXPECT_EQ(b[31], 2.0f);
    b = std::move(c);  // frees b's old buffer
    EXPECT_EQ(tracker.live_bytes(), baseline + 128);
  }
  EXPECT_EQ(tracker.live_bytes(), baseline);
}

TEST(AlignedFloats, ZeroSizeHoldsNoMemory) {
  MemoryTracker& tracker = MemoryTracker::Global();
  const int64_t baseline = tracker.live_bytes();
  AlignedFloats buf;
  EXPECT_TRUE(buf.empty());
  buf.assign(0, 0.0f);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(tracker.live_bytes(), baseline);
}

}  // namespace
}  // namespace cpgan::util
