// Retry/backoff and deadline primitives of the resilience layer: delay
// schedule shape, jitter bounds, retry accounting, injected AtomicWriteFile
// faults, and Deadline expiry semantics.

#include "util/backoff.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/deadline.h"
#include "util/fileio.h"

namespace cpgan::util {
namespace {

TEST(Backoff, DelayScheduleIsExponentialAndCapped) {
  BackoffPolicy policy;
  policy.initial_delay_ms = 2.0;
  policy.multiplier = 3.0;
  policy.max_delay_ms = 10.0;
  policy.jitter = 0.0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 0, rng), 2.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 1, rng), 6.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 2, rng), 10.0);  // capped at 18 -> 10
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 9, rng), 10.0);
}

TEST(Backoff, JitterStaysWithinFraction) {
  BackoffPolicy policy;
  policy.initial_delay_ms = 8.0;
  policy.multiplier = 1.0;
  policy.jitter = 0.5;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    double delay = BackoffDelayMs(policy, 0, rng);
    EXPECT_GT(delay, 8.0 * 0.5 - 1e-9);
    EXPECT_LE(delay, 8.0);
  }
}

TEST(Backoff, RetrySucceedsAfterTransientFailures) {
  BackoffPolicy policy;
  policy.max_attempts = 5;
  Rng rng(3);
  int calls = 0;
  std::vector<double> sleeps;
  RetryResult result = RetryWithBackoff(
      policy, rng, [&] { return ++calls >= 3; },
      [&](double ms) { sleeps.push_back(ms); });
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(result.retries(), 2);
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(sleeps.size(), 2u);  // sleeps only between attempts
  EXPECT_GT(result.slept_ms, 0.0);
}

TEST(Backoff, RetryGivesUpAfterMaxAttempts) {
  BackoffPolicy policy;
  policy.max_attempts = 3;
  Rng rng(3);
  int calls = 0;
  RetryResult result = RetryWithBackoff(
      policy, rng, [&] { ++calls; return false; }, [](double) {});
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(calls, 3);
}

TEST(Backoff, FirstTrySuccessSleepsNothing) {
  BackoffPolicy policy;
  Rng rng(3);
  bool slept = false;
  RetryResult result = RetryWithBackoff(
      policy, rng, [] { return true; }, [&](double) { slept = true; });
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(result.retries(), 0);
  EXPECT_FALSE(slept);
}

TEST(Backoff, InjectedAtomicWriteFailuresAreConsumedByRetry) {
  std::string path = ::testing::TempDir() + "/backoff_inject.txt";
  auto write = [&path] {
    return AtomicWriteFile(path, [](std::FILE* f) {
      return std::fprintf(f, "payload\n") > 0;
    });
  };
  InjectAtomicWriteFailures(2);
  EXPECT_EQ(PendingAtomicWriteFailures(), 2);
  BackoffPolicy policy;
  policy.max_attempts = 4;
  Rng rng(11);
  RetryResult result = RetryWithBackoff(policy, rng, write, [](double) {});
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.attempts, 3);  // two injected failures, then success
  EXPECT_EQ(PendingAtomicWriteFailures(), 0);
  EXPECT_TRUE(FileExists(path));
  std::remove(path.c_str());
}

TEST(Backoff, ExhaustedInjectionLeavesNoFile) {
  std::string path = ::testing::TempDir() + "/backoff_inject_fail.txt";
  std::remove(path.c_str());
  InjectAtomicWriteFailures(10);
  BackoffPolicy policy;
  policy.max_attempts = 2;
  Rng rng(11);
  RetryResult result = RetryWithBackoff(
      policy, rng,
      [&path] {
        return AtomicWriteFile(path, [](std::FILE*) { return true; });
      },
      [](double) {});
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(FileExists(path));
  InjectAtomicWriteFailures(0);  // clear leftovers for other tests
  EXPECT_EQ(PendingAtomicWriteFailures(), 0);
}

TEST(Deadline, DefaultNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(d.remaining_ms() > 1e12);
}

TEST(Deadline, NonPositiveBudgetExpiresImmediately) {
  EXPECT_TRUE(Deadline::AfterMillis(0.0).expired());
  EXPECT_TRUE(Deadline::AfterMillis(-5.0).expired());
}

TEST(Deadline, FutureDeadlineNotYetExpired) {
  Deadline d = Deadline::AfterMillis(60000.0);
  EXPECT_FALSE(d.unlimited());
  EXPECT_FALSE(d.expired());
  double remaining = d.remaining_ms();
  EXPECT_GT(remaining, 0.0);
  EXPECT_LE(remaining, 60000.0);
}

}  // namespace
}  // namespace cpgan::util
