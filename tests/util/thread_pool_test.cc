// Unit tests for the deterministic work-sharing thread pool: static
// chunking, empty/degenerate ranges, nested-call safety, exception
// propagation, deterministic reductions, and global-pool resizing.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace {

using cpgan::util::ParallelSum;
using cpgan::util::ThreadPool;

TEST(ThreadPoolTest, NumChunksIsThreadCountIndependent) {
  EXPECT_EQ(ThreadPool::NumChunks(0, 0, 4), 0);
  EXPECT_EQ(ThreadPool::NumChunks(5, 3, 4), 0);
  EXPECT_EQ(ThreadPool::NumChunks(0, 1, 4), 1);
  EXPECT_EQ(ThreadPool::NumChunks(0, 4, 4), 1);
  EXPECT_EQ(ThreadPool::NumChunks(0, 5, 4), 2);
  EXPECT_EQ(ThreadPool::NumChunks(3, 13, 4), 3);
}

TEST(ThreadPoolTest, EmptyRangeNeverInvokesBody) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, 0, 16, [&](int64_t, int64_t) { ++calls; });
  pool.ParallelFor(10, 10, 1, [&](int64_t, int64_t) { ++calls; });
  pool.ParallelFor(10, 5, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, GrainLargerThanRangeIsOneChunk) {
  ThreadPool pool(4);
  std::vector<std::pair<int64_t, int64_t>> chunks;
  pool.ParallelFor(2, 7, 1000, [&](int64_t b, int64_t e) {
    chunks.push_back({b, e});  // single chunk: no concurrent writers
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].first, 2);
  EXPECT_EQ(chunks[0].second, 7);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 3, 8}) {
    ThreadPool pool(threads);
    for (int64_t grain : {1, 3, 64, 1000}) {
      const int64_t n = 997;
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      pool.ParallelFor(0, n, grain, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
      });
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "i=" << i << " threads=" << threads
                                     << " grain=" << grain;
      }
    }
  }
}

TEST(ThreadPoolTest, ChunkBoundariesMatchStaticSchedule) {
  ThreadPool pool(4);
  const int64_t begin = 5, end = 103, grain = 8;
  const int64_t nc = ThreadPool::NumChunks(begin, end, grain);
  std::vector<std::pair<int64_t, int64_t>> chunks(nc);
  pool.ParallelForChunked(begin, end, grain,
                          [&](int64_t b, int64_t e, int64_t c) {
                            chunks[c] = {b, e};  // disjoint slots
                          });
  for (int64_t c = 0; c < nc; ++c) {
    EXPECT_EQ(chunks[c].first, begin + c * grain);
    EXPECT_EQ(chunks[c].second, std::min(end, begin + (c + 1) * grain));
  }
}

TEST(ThreadPoolTest, NestedCallsRunInlineWithoutDeadlock) {
  ThreadPool pool(4);
  const int64_t outer = 8, inner = 100;
  std::vector<std::vector<int>> marks(outer, std::vector<int>(inner, 0));
  pool.ParallelFor(0, outer, 1, [&](int64_t ob, int64_t oe) {
    for (int64_t o = ob; o < oe; ++o) {
      // Nested region: must run inline on this thread, not deadlock.
      pool.ParallelFor(0, inner, 7, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) marks[o][i] += 1;
      });
    }
  });
  for (const auto& row : marks) {
    for (int m : row) ASSERT_EQ(m, 1);
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 1,
                       [&](int64_t b, int64_t) {
                         if (b == 37) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must still be fully usable afterwards.
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, 100, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(ThreadPoolTest, ParallelSumBitwiseIdenticalAcrossThreadCounts) {
  const int64_t n = 100000;
  std::vector<float> values(n);
  cpgan::util::Rng rng(42);
  for (float& v : values) v = static_cast<float>(rng.Normal(0.0, 10.0));
  auto body = [&](int64_t b, int64_t e) {
    double acc = 0.0;
    for (int64_t i = b; i < e; ++i) acc += values[i];
    return acc;
  };
  ThreadPool::SetGlobalThreads(1);
  double serial = ParallelSum(0, n, 4096, body);
  for (int threads : {2, 4, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    double parallel = ParallelSum(0, n, 4096, body);
    EXPECT_EQ(serial, parallel) << "threads=" << threads;
  }
  ThreadPool::SetGlobalThreads(1);
}

TEST(ThreadPoolTest, ThreadsFromEnvParsesAndClamps) {
  setenv("CPGAN_NUM_THREADS", "6", 1);
  EXPECT_EQ(ThreadPool::ThreadsFromEnv(), 6);
  setenv("CPGAN_NUM_THREADS", "0", 1);
  EXPECT_GE(ThreadPool::ThreadsFromEnv(), 1);  // invalid -> hardware default
  setenv("CPGAN_NUM_THREADS", "garbage", 1);
  EXPECT_GE(ThreadPool::ThreadsFromEnv(), 1);
  setenv("CPGAN_NUM_THREADS", "999999", 1);
  EXPECT_EQ(ThreadPool::ThreadsFromEnv(), ThreadPool::kMaxThreads);
  unsetenv("CPGAN_NUM_THREADS");
  EXPECT_GE(ThreadPool::ThreadsFromEnv(), 1);
}

TEST(ThreadPoolTest, SetGlobalThreadsResizes) {
  ThreadPool::SetGlobalThreads(3);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 3);
  ThreadPool::SetGlobalThreads(-5);  // clamped
  EXPECT_EQ(ThreadPool::Global().num_threads(), 1);
  ThreadPool::SetGlobalThreads(1);
}

}  // namespace
