// Regression pins for the two silent-failure modes the MMD rewrite fixed:
//
//  * sigma <= 0 used to produce exp(-d^2 / 0) = exp(-inf) or exp(nan)
//    kernels silently; it is now a CHECK (a zero bandwidth is always a
//    caller bug, never data-dependent).
//  * A non-finite input histogram used to come out as a *perfect score*:
//    the final `std::max(0.0, mmd2)` clamp turned NaN into 0.0 because NaN
//    comparisons are false. Mmd now propagates NaN so a poisoned pipeline
//    is visible instead of optimal.

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "eval/mmd.h"

namespace cpgan::eval {
namespace {

const std::vector<std::vector<double>> kA = {{1.0, 2.0, 1.0}, {0.0, 3.0, 1.0}};
const std::vector<std::vector<double>> kB = {{2.0, 1.0}, {1.0, 1.0, 1.0, 1.0}};

TEST(MmdRegressionDeathTest, NonPositiveSigmaIsACheckFailure) {
  EXPECT_DEATH(Mmd(kA, kB, MmdKernel::kGaussianEmd, 0.0,
                   MmdEstimator::kBiased),
               "sigma");
  EXPECT_DEATH(Mmd(kA, kB, MmdKernel::kGaussianTv, -1.0,
                   MmdEstimator::kUnbiased),
               "sigma");
}

TEST(MmdRegression, NanInputPropagatesToNanResult) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<std::vector<double>> poisoned = kA;
  poisoned[1][0] = nan;
  for (MmdKernel kernel : {MmdKernel::kGaussianEmd, MmdKernel::kGaussianTv}) {
    for (MmdEstimator est :
         {MmdEstimator::kBiased, MmdEstimator::kUnbiased}) {
      EXPECT_TRUE(std::isnan(Mmd(poisoned, kB, kernel, 1.0, est)));
      EXPECT_TRUE(std::isnan(Mmd(kA, poisoned, kernel, 1.0, est)));
    }
  }
}

TEST(MmdRegression, InfInputPropagatesToNanResult) {
  std::vector<std::vector<double>> poisoned = kA;
  poisoned[0][2] = std::numeric_limits<double>::infinity();
  // inf mass normalizes to inf/inf = NaN bins; the result must not clamp.
  EXPECT_TRUE(std::isnan(
      Mmd(poisoned, kB, MmdKernel::kGaussianEmd, 1.0, MmdEstimator::kBiased)));
}

TEST(MmdRegression, FiniteInputsStillClampToZeroFromBelow) {
  // The clamp still guards the legitimate case: the unbiased estimator can
  // go a hair negative through cancellation, and a squared discrepancy must
  // not. Same-distribution sets exercise it.
  const double v = Mmd(kA, kA, MmdKernel::kGaussianEmd, 1.0,
                       MmdEstimator::kUnbiased);
  EXPECT_GE(v, 0.0);
  EXPECT_TRUE(std::isfinite(v));
}

TEST(MmdRegression, ComponentsAgreeWithMmd) {
  // The component view (one Gram matrix, every estimator served from it)
  // must agree exactly with the scalar entry point for both estimators.
  const MmdComponents c =
      ComputeMmdComponents(kA, kB, MmdKernel::kGaussianEmd, 1.3);
  EXPECT_EQ(c.Squared(MmdEstimator::kBiased),
            Mmd(kA, kB, MmdKernel::kGaussianEmd, 1.3, MmdEstimator::kBiased));
  EXPECT_EQ(
      c.Squared(MmdEstimator::kUnbiased),
      Mmd(kA, kB, MmdKernel::kGaussianEmd, 1.3, MmdEstimator::kUnbiased));
}

}  // namespace
}  // namespace cpgan::eval
