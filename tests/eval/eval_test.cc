#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "eval/community_eval.h"
#include "eval/graph_metrics.h"
#include "eval/mmd.h"
#include "eval/nll.h"
#include "eval/report.h"
#include "generators/er.h"
#include "util/rng.h"

namespace cpgan::eval {
namespace {

TEST(EmdTest, IdenticalHistogramsZero) {
  std::vector<double> h = {0.2, 0.5, 0.3};
  EXPECT_DOUBLE_EQ(Emd1D(h, h), 0.0);
}

TEST(EmdTest, ShiftByOneBin) {
  // Unit mass moved by one bin -> EMD 1.
  EXPECT_DOUBLE_EQ(Emd1D({1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(Emd1D({1.0, 0.0, 0.0}, {0.0, 0.0, 1.0}), 2.0);
}

TEST(EmdTest, NormalizesInputs) {
  EXPECT_DOUBLE_EQ(Emd1D({2.0, 0.0}, {0.0, 8.0}), 1.0);
}

TEST(EmdTest, DifferentLengthsPadded) {
  EXPECT_DOUBLE_EQ(Emd1D({1.0}, {0.0, 1.0}), 1.0);
}

TEST(TvTest, BoundsAndKnownValue) {
  EXPECT_DOUBLE_EQ(TotalVariation({1.0, 0.0}, {0.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(TotalVariation({0.5, 0.5}, {0.5, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(TotalVariation({1.0, 0.0}, {0.5, 0.5}), 0.5);
}

TEST(MmdTest, IdenticalSetsZero) {
  std::vector<std::vector<double>> a = {{0.3, 0.7}, {0.5, 0.5}};
  EXPECT_NEAR(Mmd(a, a), 0.0, 1e-9);
}

TEST(MmdTest, DisjointDistributionsPositive) {
  std::vector<std::vector<double>> a = {{1.0, 0.0, 0.0, 0.0}};
  std::vector<std::vector<double>> b = {{0.0, 0.0, 0.0, 1.0}};
  EXPECT_GT(Mmd(a, b, MmdKernel::kGaussianEmd, 1.0), 0.5);
  EXPECT_GT(Mmd(a, b, MmdKernel::kGaussianTv, 0.5), 0.5);
}

TEST(MmdTest, CloserDistributionsScoreLower) {
  std::vector<std::vector<double>> base = {{1.0, 0.0, 0.0, 0.0}};
  std::vector<std::vector<double>> near = {{0.8, 0.2, 0.0, 0.0}};
  std::vector<std::vector<double>> far = {{0.0, 0.0, 0.0, 1.0}};
  EXPECT_LT(Mmd(base, near), Mmd(base, far));
}

TEST(NllTest, PerfectPredictionsNearZero) {
  EXPECT_NEAR(EdgeNll({1.0, 1.0}, {0.0, 0.0}), 0.0, 1e-4);
}

TEST(NllTest, WrongPredictionsLarge) {
  EXPECT_GT(EdgeNll({0.01}, {0.99}), 4.0);
}

TEST(NllTest, KnownValue) {
  // -log(0.5) for every entry.
  EXPECT_NEAR(EdgeNll({0.5}, {0.5}), std::log(2.0), 1e-6);
  EXPECT_DOUBLE_EQ(EdgeNll({}, {}), 0.0);
}

TEST(GenerationMetricsTest, IdenticalGraphsScoreZero) {
  data::CommunityGraphParams params;
  params.num_nodes = 120;
  params.num_edges = 400;
  params.num_communities = 6;
  util::Rng build(1);
  graph::Graph g = data::MakeCommunityGraph(params, build);
  util::Rng rng(2);
  GenerationMetrics m = ComputeGenerationMetrics(g, g, rng);
  EXPECT_NEAR(m.deg, 0.0, 1e-9);
  EXPECT_NEAR(m.clus, 0.0, 1e-9);
  EXPECT_NEAR(m.gini, 0.0, 1e-9);
  EXPECT_NEAR(m.pwe, 0.0, 1e-9);
  EXPECT_LT(m.cpl, 0.2);  // sampled CPL estimates may differ slightly
}

TEST(GenerationMetricsTest, RandomGraphScoresWorseThanSelf) {
  data::CommunityGraphParams params;
  params.num_nodes = 150;
  params.num_edges = 500;
  params.num_communities = 8;
  params.triangle_fraction = 0.3;
  util::Rng build(3);
  graph::Graph g = data::MakeCommunityGraph(params, build);
  generators::ErGenerator er;
  util::Rng rng(4);
  er.Fit(g, rng);
  graph::Graph random = er.Generate(rng);
  GenerationMetrics m = ComputeGenerationMetrics(g, random, rng);
  EXPECT_GT(m.deg + m.clus + m.gini, 0.01);
}

TEST(CommunityEvalTest, SelfComparisonIsPerfect) {
  data::CommunityGraphParams params;
  params.num_nodes = 100;
  params.num_edges = 350;
  params.num_communities = 5;
  params.intra_fraction = 0.95;
  util::Rng build(5);
  graph::Graph g = data::MakeCommunityGraph(params, build);
  util::Rng rng(6);
  CommunityMetrics m = EvaluateCommunityPreservation(g, g, rng);
  EXPECT_GT(m.nmi, 0.95);
  EXPECT_GT(m.ari, 0.9);
}

TEST(CommunityEvalTest, RandomGraphScoresLow) {
  data::CommunityGraphParams params;
  params.num_nodes = 150;
  params.num_edges = 500;
  params.num_communities = 6;
  params.intra_fraction = 0.95;
  util::Rng build(7);
  graph::Graph g = data::MakeCommunityGraph(params, build);
  generators::ErGenerator er;
  util::Rng rng(8);
  er.Fit(g, rng);
  graph::Graph random = er.Generate(rng);
  CommunityMetrics m = EvaluateCommunityPreservation(g, random, rng);
  EXPECT_LT(m.ari, 0.2);
}

TEST(ReportTest, MeanStd) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_NEAR(Stddev({1.0, 2.0, 3.0}), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(Stddev({5.0}), 0.0);
}

TEST(ReportTest, FormatsLikePaper) {
  EXPECT_EQ(FormatMeanStdE2({0.725, 0.725}), "72.5±0.0");
  std::string s = FormatMeanStdE2({0.70, 0.75});
  EXPECT_NE(s.find("72.5"), std::string::npos);
}

}  // namespace
}  // namespace cpgan::eval

namespace cpgan::eval {
namespace {

TEST(AucTest, PerfectSeparationIsOne) {
  EXPECT_DOUBLE_EQ(LinkPredictionAuc({0.9, 0.8}, {0.1, 0.2}), 1.0);
}

TEST(AucTest, ReversedSeparationIsZero) {
  EXPECT_DOUBLE_EQ(LinkPredictionAuc({0.1}, {0.9}), 0.0);
}

TEST(AucTest, TiesGiveHalf) {
  EXPECT_DOUBLE_EQ(LinkPredictionAuc({0.5, 0.5}, {0.5, 0.5}), 0.5);
  EXPECT_DOUBLE_EQ(LinkPredictionAuc({}, {0.5}), 0.5);
}

TEST(AucTest, KnownMixedCase) {
  // pos {0.9, 0.4}, neg {0.6, 0.2}: pairs won = (0.9>0.6)+(0.9>0.2)+(0.4>0.2)
  // = 3 of 4 -> 0.75.
  EXPECT_DOUBLE_EQ(LinkPredictionAuc({0.9, 0.4}, {0.6, 0.2}), 0.75);
}

}  // namespace
}  // namespace cpgan::eval

namespace cpgan::eval {
namespace {

TEST(MmdTest, MultiSampleSetsSupported) {
  // MMD over sets of graphs (the GraphRNN-style usage): two samples per
  // side; identical sets give 0, disjoint sets give > 0.
  std::vector<std::vector<double>> a = {{0.9, 0.1, 0.0}, {0.8, 0.2, 0.0}};
  std::vector<std::vector<double>> b = {{0.0, 0.1, 0.9}, {0.0, 0.2, 0.8}};
  EXPECT_NEAR(Mmd(a, a), 0.0, 1e-9);
  EXPECT_GT(Mmd(a, b), 0.1);
}

}  // namespace
}  // namespace cpgan::eval
