#include <cstdio>

#include <gtest/gtest.h>

#include "community/louvain.h"
#include "data/datasets.h"
#include "data/loader.h"
#include "data/synthetic.h"
#include "graph/algorithms.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "util/rng.h"

namespace cpgan::data {
namespace {

TEST(SyntheticTest, HitsNodeAndEdgeTargets) {
  CommunityGraphParams params;
  params.num_nodes = 300;
  params.num_edges = 1000;
  params.num_communities = 12;
  util::Rng rng(1);
  graph::Graph g = MakeCommunityGraph(params, rng);
  EXPECT_EQ(g.num_nodes(), 300);
  EXPECT_GT(g.num_edges(), 800);
  EXPECT_LT(g.num_edges(), 1200);
}

TEST(SyntheticTest, NoIsolatedNodes) {
  CommunityGraphParams params;
  params.num_nodes = 400;
  params.num_edges = 700;  // sparse: connectivity pass must kick in
  params.num_communities = 20;
  util::Rng rng(2);
  graph::Graph g = MakeCommunityGraph(params, rng);
  for (int v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GT(g.degree(v), 0) << "node " << v;
  }
}

TEST(SyntheticTest, IntraFractionControlsCommunityStrength) {
  util::Rng rng_strong(3);
  util::Rng rng_weak(3);
  CommunityGraphParams strong;
  strong.num_nodes = 300;
  strong.num_edges = 1200;
  strong.num_communities = 10;
  strong.intra_fraction = 0.95;
  CommunityGraphParams weak = strong;
  weak.intra_fraction = 0.3;
  graph::Graph g_strong = MakeCommunityGraph(strong, rng_strong);
  graph::Graph g_weak = MakeCommunityGraph(weak, rng_weak);
  util::Rng det(4);
  double q_strong = community::Louvain(g_strong, det).modularity;
  double q_weak = community::Louvain(g_weak, det).modularity;
  EXPECT_GT(q_strong, q_weak);
}

TEST(SyntheticTest, TriangleFractionRaisesClustering) {
  CommunityGraphParams base;
  base.num_nodes = 250;
  base.num_edges = 900;
  base.num_communities = 8;
  base.triangle_fraction = 0.0;
  CommunityGraphParams boosted = base;
  boosted.triangle_fraction = 0.4;
  util::Rng rng_a(5);
  util::Rng rng_b(5);
  graph::Graph g_base = MakeCommunityGraph(base, rng_a);
  graph::Graph g_boost = MakeCommunityGraph(boosted, rng_b);
  EXPECT_GT(graph::AverageClusteringCoefficient(g_boost),
            graph::AverageClusteringCoefficient(g_base));
}

TEST(PointCloudTest, KnnDegreesBounded) {
  util::Rng rng(6);
  graph::Graph g = MakePointCloudGraph(200, 20, 3, rng);
  EXPECT_EQ(g.num_nodes(), 200);
  for (int v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE(g.degree(v), 3);  // at least its own k neighbors
  }
  // Long characteristic path length relative to density is the dataset's
  // signature; just check connectivity structure is nontrivial.
  EXPECT_GT(graph::AverageClusteringCoefficient(g), 0.2);
}

TEST(DatasetsTest, AllNamesBuild) {
  for (const std::string& name : DatasetNames()) {
    graph::Graph g = MakeDataset(name, 42);
    EXPECT_GT(g.num_nodes(), 100) << name;
    EXPECT_GT(g.num_edges(), 100) << name;
  }
}

TEST(DatasetsTest, DeterministicForSeed) {
  graph::Graph a = MakeDataset("ppi_like", 9);
  graph::Graph b = MakeDataset("ppi_like", 9);
  EXPECT_EQ(a.Edges(), b.Edges());
}

TEST(DatasetsTest, ScalingPreservesDensity) {
  graph::Graph full = MakeDataset("citeseer_like", 1);
  graph::Graph half = MakeScaledDataset("citeseer_like", 280, 1);
  EXPECT_EQ(half.num_nodes(), 280);
  EXPECT_NEAR(half.MeanDegree(), full.MeanDegree(), 1.0);
}

TEST(DatasetsTest, RelativeCharacteristics) {
  // facebook_like is the densest; pointcloud_like has the longest CPL.
  util::Rng rng(7);
  graph::Graph facebook = MakeDataset("facebook_like");
  graph::Graph citeseer = MakeDataset("citeseer_like");
  graph::Graph pointcloud = MakeDataset("pointcloud_like");
  EXPECT_GT(facebook.MeanDegree(), 2.0 * citeseer.MeanDegree());
  double cpl_pc = graph::CharacteristicPathLength(pointcloud, rng);
  double cpl_fb = graph::CharacteristicPathLength(facebook, rng);
  EXPECT_GT(cpl_pc, 2.0 * cpl_fb);
}

TEST(LoaderTest, ResolvesNamesAndFiles) {
  EXPECT_FALSE(IsFilePath("ppi_like"));
  graph::Graph by_name = LoadGraph("ppi_like");
  EXPECT_GT(by_name.num_nodes(), 0);

  std::string path = ::testing::TempDir() + "/loader_graph.txt";
  graph::Graph g(3, {{0, 1}, {1, 2}});
  ASSERT_TRUE(graph::SaveEdgeList(g, path));
  EXPECT_TRUE(IsFilePath(path));
  graph::Graph by_file = LoadGraph(path);
  EXPECT_EQ(by_file.num_edges(), 2);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cpgan::data
