#ifndef CPGAN_TESTS_TEST_UTIL_H_
#define CPGAN_TESTS_TEST_UTIL_H_

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace cpgan::testing {

/// Checks the autograd gradient of `loss_fn` with respect to `param` against
/// central finite differences. `loss_fn` must rebuild the loss from the
/// current value of `param` on every call (no reuse of old graph nodes).
inline void ExpectGradCheck(tensor::Tensor param,
                            const std::function<tensor::Tensor()>& loss_fn,
                            float step = 1e-3f, float tol = 2e-2f) {
  ASSERT_TRUE(param.requires_grad());
  param.ZeroGrad();
  tensor::Tensor loss = loss_fn();
  tensor::Backward(loss);
  tensor::Matrix analytic = param.grad();

  tensor::Matrix& value = param.mutable_value();
  for (int64_t i = 0; i < value.size(); ++i) {
    float original = value.data()[i];
    value.data()[i] = original + step;
    float up = loss_fn().Scalar();
    value.data()[i] = original - step;
    float down = loss_fn().Scalar();
    value.data()[i] = original;
    float numeric = (up - down) / (2.0f * step);
    float a = analytic.data()[i];
    float denom = std::max(1.0f, std::max(std::fabs(a), std::fabs(numeric)));
    EXPECT_NEAR(a / denom, numeric / denom, tol)
        << "entry " << i << ": analytic=" << a << " numeric=" << numeric;
  }
  param.ZeroGrad();
}

/// Builds a small matrix filled with deterministic pseudo-random values.
inline tensor::Matrix TestMatrix(int rows, int cols, float scale = 1.0f,
                                 uint64_t seed = 7) {
  tensor::Matrix m(rows, cols);
  uint64_t state = seed;
  for (int64_t i = 0; i < m.size(); ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    float u = static_cast<float>((state >> 33) & 0xFFFFFF) / 16777216.0f;
    m.data()[i] = (u - 0.5f) * 2.0f * scale;
  }
  return m;
}

}  // namespace cpgan::testing

#endif  // CPGAN_TESTS_TEST_UTIL_H_
