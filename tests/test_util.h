#ifndef CPGAN_TESTS_TEST_UTIL_H_
#define CPGAN_TESTS_TEST_UTIL_H_

#include <functional>

#include <gtest/gtest.h>

#include "tensor/tensor.h"
#include "testing/gradcheck.h"

namespace cpgan::testing {

/// Checks the autograd gradient of `loss_fn` with respect to `param` against
/// central finite differences. `loss_fn` must rebuild the loss from the
/// current value of `param` on every call (no reuse of old graph nodes).
/// Thin gtest wrapper over the central checker in src/testing/gradcheck.h.
inline void ExpectGradCheck(tensor::Tensor param,
                            const std::function<tensor::Tensor()>& loss_fn,
                            float step = 1e-3f, float tol = 2e-2f) {
  ASSERT_TRUE(param.requires_grad());
  GradCheckOptions options;
  options.step = step;
  options.rtol = tol;
  options.atol = tol;  // matches the historical max(1, |a|, |n|) denominator
  GradCheckResult result = GradCheck(loss_fn, {param}, options);
  EXPECT_TRUE(result.ok) << result.Summary();
}

/// Builds a small matrix filled with deterministic pseudo-random values.
inline tensor::Matrix TestMatrix(int rows, int cols, float scale = 1.0f,
                                 uint64_t seed = 7) {
  tensor::Matrix m(rows, cols);
  uint64_t state = seed;
  for (int64_t i = 0; i < m.size(); ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    float u = static_cast<float>((state >> 33) & 0xFFFFFF) / 16777216.0f;
    m.data()[i] = (u - 0.5f) * 2.0f * scale;
  }
  return m;
}

}  // namespace cpgan::testing

#endif  // CPGAN_TESTS_TEST_UTIL_H_
