#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tests/test_util.h"

namespace cpgan::tensor {
namespace {

using cpgan::testing::ExpectGradCheck;
using cpgan::testing::TestMatrix;

Tensor Param(int rows, int cols, float scale = 1.0f, uint64_t seed = 7) {
  return Tensor(TestMatrix(rows, cols, scale, seed), /*requires_grad=*/true);
}

TEST(AutogradTest, BackwardOnLeafScalar) {
  Tensor x = Param(1, 1);
  Tensor loss = Scale(x, 3.0f);
  Backward(loss);
  EXPECT_FLOAT_EQ(x.grad().At(0, 0), 3.0f);
}

TEST(AutogradTest, GradAccumulatesAcrossUses) {
  Tensor x = Param(2, 2);
  // loss = sum(x) + sum(x) -> grad of 2 everywhere.
  Tensor loss = Add(SumAll(x), SumAll(x));
  Backward(loss);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) EXPECT_FLOAT_EQ(x.grad().At(r, c), 2.0f);
  }
}

TEST(AutogradTest, DetachBlocksGradient) {
  Tensor x = Param(2, 2);
  Tensor loss = SumAll(Mul(x.Detach(), x.Detach()));
  Backward(loss);
  EXPECT_FLOAT_EQ(x.grad().Norm(), 0.0f);
}

TEST(AutogradTest, ZeroGradResets) {
  Tensor x = Param(2, 3);
  Backward(SumAll(x));
  EXPECT_GT(x.grad().Norm(), 0.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad().Norm(), 0.0f);
}

// ---------------------------------------------------------------------------
// Finite-difference checks, one per differentiable op.
// ---------------------------------------------------------------------------

TEST(GradCheckTest, AddSubMul) {
  Tensor a = Param(3, 4, 1.0f, 1);
  Tensor b = Param(3, 4, 1.0f, 2);
  ExpectGradCheck(a, [&] { return SumAll(Mul(Add(a, b), Sub(a, b))); });
  ExpectGradCheck(b, [&] { return SumAll(Mul(Add(a, b), Sub(a, b))); });
}

TEST(GradCheckTest, Div) {
  Tensor a = Param(2, 3, 1.0f, 3);
  Tensor b(TestMatrix(2, 3, 0.5f, 4), true);
  // Shift denominator away from zero.
  for (int64_t i = 0; i < b.value().size(); ++i) {
    b.mutable_value().data()[i] += 2.0f;
  }
  ExpectGradCheck(a, [&] { return SumAll(Div(a, b)); });
  ExpectGradCheck(b, [&] { return SumAll(Div(a, b)); });
}

TEST(GradCheckTest, RowVecBroadcasts) {
  Tensor x = Param(4, 3, 1.0f, 5);
  Tensor v = Param(1, 3, 1.0f, 6);
  ExpectGradCheck(x, [&] { return SumAll(Square(AddRowVec(x, v))); });
  ExpectGradCheck(v, [&] { return SumAll(Square(AddRowVec(x, v))); });
  ExpectGradCheck(x, [&] { return SumAll(Square(MulRowVec(x, v))); });
  ExpectGradCheck(v, [&] { return SumAll(Square(MulRowVec(x, v))); });
}

TEST(GradCheckTest, ColVecBroadcast) {
  Tensor x = Param(4, 3, 1.0f, 7);
  Tensor v = Param(4, 1, 1.0f, 8);
  ExpectGradCheck(x, [&] { return SumAll(Square(MulColVec(x, v))); });
  ExpectGradCheck(v, [&] { return SumAll(Square(MulColVec(x, v))); });
}

TEST(GradCheckTest, ScaleAddConstNeg) {
  Tensor x = Param(3, 3, 1.0f, 9);
  ExpectGradCheck(x, [&] { return SumAll(Square(AddConst(Scale(x, 1.7f), 0.3f))); });
  ExpectGradCheck(x, [&] { return SumAll(Square(Neg(x))); });
}

TEST(GradCheckTest, Activations) {
  Tensor x = Param(3, 4, 1.5f, 10);
  ExpectGradCheck(x, [&] { return SumAll(Sigmoid(x)); });
  ExpectGradCheck(x, [&] { return SumAll(Tanh(x)); });
  ExpectGradCheck(x, [&] { return SumAll(Softplus(x)); });
  ExpectGradCheck(x, [&] { return SumAll(LogSigmoid(x)); });
  ExpectGradCheck(x, [&] { return SumAll(Exp(Scale(x, 0.3f))); });
}

TEST(GradCheckTest, ReluAwayFromKink) {
  // Values in TestMatrix are bounded away from 0 rarely; nudge them.
  Tensor x = Param(3, 4, 1.0f, 11);
  for (int64_t i = 0; i < x.value().size(); ++i) {
    float& v = x.mutable_value().data()[i];
    if (std::fabs(v) < 0.1f) v = 0.5f;
  }
  ExpectGradCheck(x, [&] { return SumAll(Square(Relu(x))); });
}

TEST(GradCheckTest, LogSqrtSquareReciprocal) {
  Tensor x(TestMatrix(3, 3, 0.4f, 12), true);
  for (int64_t i = 0; i < x.value().size(); ++i) {
    x.mutable_value().data()[i] += 2.0f;  // strictly positive
  }
  ExpectGradCheck(x, [&] { return SumAll(Log(x)); });
  ExpectGradCheck(x, [&] { return SumAll(Sqrt(x)); });
  ExpectGradCheck(x, [&] { return SumAll(Square(x)); });
  ExpectGradCheck(x, [&] { return SumAll(Reciprocal(x)); });
}

TEST(GradCheckTest, SoftmaxRows) {
  Tensor x = Param(3, 5, 1.0f, 13);
  Tensor weights = Tensor(TestMatrix(3, 5, 1.0f, 14), false);
  ExpectGradCheck(x, [&] { return SumAll(Mul(SoftmaxRows(x), weights)); });
}

TEST(GradCheckTest, MatmulAndTranspose) {
  Tensor a = Param(3, 4, 1.0f, 15);
  Tensor b = Param(4, 2, 1.0f, 16);
  ExpectGradCheck(a, [&] { return SumAll(Square(Matmul(a, b))); });
  ExpectGradCheck(b, [&] { return SumAll(Square(Matmul(a, b))); });
  ExpectGradCheck(a, [&] { return SumAll(Square(Transpose(a))); });
}

TEST(GradCheckTest, Spmm) {
  auto sparse = std::make_shared<SparseMatrix>(
      3, 3,
      std::vector<Triplet>{{0, 0, 0.5f}, {0, 1, 0.5f}, {1, 1, 1.0f},
                           {2, 0, 0.3f}, {2, 2, 0.7f}});
  Tensor x = Param(3, 4, 1.0f, 17);
  ExpectGradCheck(x, [&] { return SumAll(Square(Spmm(sparse, x))); });
}

TEST(GradCheckTest, ConcatAndSlice) {
  Tensor a = Param(2, 3, 1.0f, 18);
  Tensor b = Param(2, 3, 1.0f, 19);
  ExpectGradCheck(a, [&] { return SumAll(Square(ConcatRows({a, b}))); });
  ExpectGradCheck(b, [&] { return SumAll(Square(ConcatCols({a, b}))); });
  ExpectGradCheck(a, [&] { return SumAll(Square(SliceCols(ConcatCols({a, b}), 1, 4))); });
}

TEST(GradCheckTest, GatherRows) {
  Tensor x = Param(4, 3, 1.0f, 20);
  ExpectGradCheck(x, [&] {
    return SumAll(Square(GatherRows(x, {0, 2, 2, 3})));
  });
}

TEST(GradCheckTest, Reshape) {
  Tensor x = Param(2, 6, 1.0f, 21);
  ExpectGradCheck(x, [&] { return SumAll(Square(Reshape(x, 3, 4))); });
}

TEST(GradCheckTest, Reductions) {
  Tensor x = Param(4, 3, 1.0f, 22);
  Tensor w_row = Tensor(TestMatrix(1, 3, 1.0f, 23), false);
  Tensor w_col = Tensor(TestMatrix(4, 1, 1.0f, 24), false);
  ExpectGradCheck(x, [&] { return MeanAll(Square(x)); });
  ExpectGradCheck(x, [&] { return SumAll(Mul(ColMean(Square(x)), w_row)); });
  ExpectGradCheck(x, [&] { return SumAll(Mul(RowSum(Square(x)), w_col)); });
  ExpectGradCheck(x, [&] { return SumAll(Mul(RowMean(Square(x)), w_col)); });
}

TEST(GradCheckTest, RowL2Norm) {
  Tensor x(TestMatrix(3, 4, 1.0f, 25), true);
  for (int64_t i = 0; i < x.value().size(); ++i) {
    x.mutable_value().data()[i] += (x.value().data()[i] >= 0 ? 0.5f : -0.5f);
  }
  ExpectGradCheck(x, [&] { return SumAll(Square(RowL2Norm(x))); });
}

TEST(GradCheckTest, BceWithLogits) {
  Tensor logits = Param(3, 3, 1.5f, 26);
  Matrix targets(3, 3);
  targets.At(0, 1) = 1.0f;
  targets.At(1, 0) = 1.0f;
  targets.At(2, 2) = 1.0f;
  ExpectGradCheck(logits, [&] { return BceWithLogits(logits, targets, 2.0f); });
}

TEST(GradCheckTest, MseLoss) {
  Tensor a = Param(3, 3, 1.0f, 27);
  Tensor b = Param(3, 3, 1.0f, 28);
  ExpectGradCheck(a, [&] { return MseLoss(a, b); });
  ExpectGradCheck(b, [&] { return MseLoss(a, b); });
}

TEST(GradCheckTest, ComposedExpression) {
  // A small end-to-end expression resembling one GCN + softmax + loss.
  Tensor w = Param(4, 5, 0.8f, 29);
  Tensor x = Tensor(TestMatrix(6, 4, 1.0f, 30), false);
  auto sparse = std::make_shared<SparseMatrix>(
      6, 6,
      std::vector<Triplet>{{0, 1, 0.5f}, {1, 0, 0.5f}, {2, 3, 0.5f},
                           {3, 2, 0.5f}, {4, 5, 0.5f}, {5, 4, 0.5f},
                           {0, 0, 0.5f}, {1, 1, 0.5f}, {2, 2, 0.5f},
                           {3, 3, 0.5f}, {4, 4, 0.5f}, {5, 5, 0.5f}});
  Tensor picked = Tensor(TestMatrix(6, 5, 1.0f, 31), false);
  ExpectGradCheck(w, [&] {
    Tensor h = Relu(Spmm(sparse, Matmul(x, w)));
    Tensor s = SoftmaxRows(h);
    return SumAll(Mul(Log(AddConst(s, 0.01f)), picked));
  });
}

TEST(DropoutTest, EvalModeIsIdentity) {
  util::Rng rng(1);
  Tensor x = Param(4, 4);
  Tensor y = Dropout(x, 0.5f, rng, /*train=*/false);
  EXPECT_FLOAT_EQ(Sub(y, x).value().Norm(), 0.0f);
}

TEST(DropoutTest, TrainModePreservesExpectation) {
  util::Rng rng(2);
  Tensor x = Constant(Matrix(50, 50, 1.0f));
  Tensor y = Dropout(x, 0.3f, rng, /*train=*/true);
  double mean = y.value().Sum() / y.value().size();
  EXPECT_NEAR(mean, 1.0, 0.1);
}

}  // namespace
}  // namespace cpgan::tensor
