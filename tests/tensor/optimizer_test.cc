#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace cpgan::tensor {
namespace {

/// Minimizes f(x) = ||x - target||^2 with the given optimizer for `steps`
/// iterations and returns the final distance to the optimum.
template <typename Opt>
float MinimizeQuadratic(Opt& opt, Tensor& x, const Matrix& target,
                        int steps) {
  Tensor t = Constant(target);
  for (int i = 0; i < steps; ++i) {
    Tensor loss = MseLoss(x, t);
    Backward(loss);
    opt.Step();
    opt.ZeroGrad();
  }
  Matrix diff = x.value();
  diff.Axpy(-1.0f, target);
  return diff.Norm();
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Tensor x(Matrix(2, 2, 5.0f), true);
  Matrix target(2, 2, 1.0f);
  Sgd opt({x}, 0.5f);
  EXPECT_LT(MinimizeQuadratic(opt, x, target, 200), 1e-3f);
}

TEST(SgdTest, MomentumConverges) {
  Tensor x(Matrix(3, 1, -4.0f), true);
  Matrix target(3, 1, 2.0f);
  Sgd opt({x}, 0.2f, 0.9f);
  EXPECT_LT(MinimizeQuadratic(opt, x, target, 300), 1e-2f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Tensor x(Matrix(2, 3, 10.0f), true);
  Matrix target(2, 3, -1.0f);
  Adam opt({x}, 0.3f);
  EXPECT_LT(MinimizeQuadratic(opt, x, target, 400), 1e-2f);
}

TEST(AdamTest, HandlesScaledGradients) {
  // Adam's per-parameter normalization should converge even when the loss
  // is scaled by a large constant.
  Tensor x(Matrix(1, 1, 3.0f), true);
  Tensor target = ScalarConstant(0.0f);
  Adam opt({x}, 0.2f);
  for (int i = 0; i < 300; ++i) {
    Tensor loss = Scale(Square(Sub(x, target)), 1e4f);
    Backward(loss);
    opt.Step();
    opt.ZeroGrad();
  }
  EXPECT_NEAR(x.value().At(0, 0), 0.0f, 0.05f);
}

TEST(OptimizerTest, LearningRateDecay) {
  Tensor x(Matrix(1, 1, 1.0f), true);
  Adam opt({x}, 1.0f);
  opt.DecayLearningRate(0.3f);
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.3f);
  opt.DecayLearningRate(0.3f);
  EXPECT_NEAR(opt.learning_rate(), 0.09f, 1e-6f);
}

TEST(OptimizerTest, ZeroGradClearsAll) {
  Tensor x(Matrix(2, 2, 1.0f), true);
  Adam opt({x}, 0.1f);
  Backward(SumAll(x));
  EXPECT_GT(x.grad().Norm(), 0.0f);
  opt.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad().Norm(), 0.0f);
}

TEST(ClipGradientsTest, ClampsElementwise) {
  Tensor x(Matrix(1, 3), true);
  Tensor scale = Constant([] {
    Matrix m(1, 3);
    m.At(0, 0) = 100.0f;
    m.At(0, 1) = -50.0f;
    m.At(0, 2) = 0.5f;
    return m;
  }());
  Backward(SumAll(Mul(x, scale)));
  ClipGradients({x}, 2.0f);
  EXPECT_FLOAT_EQ(x.grad().At(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(x.grad().At(0, 1), -2.0f);
  EXPECT_FLOAT_EQ(x.grad().At(0, 2), 0.5f);
}

}  // namespace
}  // namespace cpgan::tensor
