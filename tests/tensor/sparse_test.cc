#include <gtest/gtest.h>

#include "tensor/sparse.h"
#include "tests/test_util.h"

namespace cpgan::tensor {
namespace {

TEST(SparseMatrixTest, BuildsAndDeduplicates) {
  SparseMatrix s(2, 2, {{0, 0, 1.0f}, {0, 0, 2.0f}, {1, 0, 4.0f}});
  EXPECT_EQ(s.rows(), 2);
  EXPECT_EQ(s.cols(), 2);
  EXPECT_EQ(s.nnz(), 2);  // duplicate (0,0) summed
  Matrix d = s.ToDense();
  EXPECT_FLOAT_EQ(d.At(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(d.At(1, 0), 4.0f);
  EXPECT_FLOAT_EQ(d.At(1, 1), 0.0f);
}

TEST(SparseMatrixTest, MultiplyMatchesDense) {
  SparseMatrix s(3, 4, {{0, 1, 2.0f}, {1, 3, -1.0f}, {2, 0, 0.5f},
                        {2, 2, 1.5f}});
  Matrix x = testing::TestMatrix(4, 5, 1.0f, 11);
  Matrix sparse_result = s.Multiply(x);
  Matrix dense_result = Matmul(s.ToDense(), x);
  dense_result.Axpy(-1.0f, sparse_result);
  EXPECT_LT(dense_result.Norm(), 1e-5f);
}

TEST(SparseMatrixTest, MultiplyTransposedMatchesDense) {
  SparseMatrix s(3, 4, {{0, 1, 2.0f}, {1, 3, -1.0f}, {2, 2, 1.5f}});
  Matrix x = testing::TestMatrix(3, 2, 1.0f, 12);
  Matrix result = s.MultiplyTransposed(x);
  Matrix expected = Matmul(s.ToDense().Transposed(), x);
  expected.Axpy(-1.0f, result);
  EXPECT_LT(expected.Norm(), 1e-5f);
}

TEST(SparseMatrixTest, RowSums) {
  SparseMatrix s(2, 3, {{0, 0, 1.0f}, {0, 2, 2.0f}, {1, 1, -3.0f}});
  Matrix sums = s.RowSums();
  EXPECT_FLOAT_EQ(sums.At(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(sums.At(1, 0), -3.0f);
}

TEST(SparseMatrixTest, TransposedRoundTrip) {
  SparseMatrix s(3, 2, {{0, 1, 2.0f}, {2, 0, 5.0f}});
  SparseMatrix t = s.Transposed();
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  Matrix d = t.ToDense();
  EXPECT_FLOAT_EQ(d.At(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(d.At(0, 2), 5.0f);
}

TEST(NormalizedAdjacencyTest, SymmetricWithUnitSpectralRadius) {
  // Path graph 0-1-2.
  SparseMatrix a = NormalizedAdjacency(3, {{0, 1}, {1, 2}});
  Matrix d = a.ToDense();
  // Symmetry.
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(d.At(i, j), d.At(j, i), 1e-6f);
    }
  }
  // Self-loops present.
  EXPECT_GT(d.At(0, 0), 0.0f);
  // Known value: node 0 degree 2 (incl self-loop), node 1 degree 3.
  EXPECT_NEAR(d.At(0, 1), 1.0f / std::sqrt(2.0f * 3.0f), 1e-5f);
  EXPECT_NEAR(d.At(0, 0), 0.5f, 1e-5f);
}

TEST(NormalizedAdjacencyTest, IgnoresSelfLoopEdges) {
  SparseMatrix a = NormalizedAdjacency(2, {{0, 0}, {0, 1}});
  Matrix d = a.ToDense();
  // Only the normalization self-loop contributes on the diagonal.
  EXPECT_NEAR(d.At(0, 0), 0.5f, 1e-5f);
}

TEST(NormalizedAdjacencyTest, IsolatedNodeHasUnitSelfLoop) {
  SparseMatrix a = NormalizedAdjacency(2, {});
  Matrix d = a.ToDense();
  EXPECT_NEAR(d.At(0, 0), 1.0f, 1e-6f);
  EXPECT_NEAR(d.At(1, 1), 1.0f, 1e-6f);
  EXPECT_NEAR(d.At(0, 1), 0.0f, 1e-6f);
}

}  // namespace
}  // namespace cpgan::tensor

namespace cpgan::tensor {
namespace {

TEST(TwoHopAdjacencyTest, AddsTwoHopEntries) {
  // Path 0-1-2: plain adjacency has no (0,2) entry, the boosted one does.
  SparseMatrix plain = NormalizedAdjacency(3, {{0, 1}, {1, 2}});
  SparseMatrix boosted = TwoHopNormalizedAdjacency(3, {{0, 1}, {1, 2}}, 0.5f);
  EXPECT_FLOAT_EQ(plain.ToDense().At(0, 2), 0.0f);
  EXPECT_GT(boosted.ToDense().At(0, 2), 0.0f);
}

TEST(TwoHopAdjacencyTest, StaysSymmetric) {
  SparseMatrix a =
      TwoHopNormalizedAdjacency(4, {{0, 1}, {1, 2}, {2, 3}}, 0.5f);
  Matrix d = a.ToDense();
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_NEAR(d.At(i, j), d.At(j, i), 1e-6f);
    }
  }
}

TEST(TwoHopAdjacencyTest, ZeroWeightStillNormalizes) {
  SparseMatrix a = TwoHopNormalizedAdjacency(3, {{0, 1}}, 0.0f);
  EXPECT_GT(a.ToDense().At(0, 1), 0.0f);
}

}  // namespace
}  // namespace cpgan::tensor
