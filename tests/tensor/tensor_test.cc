#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/memory_tracker.h"
#include "tests/test_util.h"

namespace cpgan::tensor {
namespace {

using cpgan::testing::TestMatrix;

TEST(TensorTest, DefaultHandleUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
}

TEST(TensorTest, LeafConstruction) {
  Tensor t(Matrix(2, 3, 1.5f), /*requires_grad=*/true);
  EXPECT_TRUE(t.defined());
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_TRUE(t.requires_grad());
  EXPECT_FLOAT_EQ(t.value().At(0, 0), 1.5f);
}

TEST(TensorTest, RequiresGradPropagates) {
  Tensor a(Matrix(2, 2, 1.0f), true);
  Tensor b(Matrix(2, 2, 1.0f), false);
  EXPECT_TRUE(Add(a, b).requires_grad());
  EXPECT_FALSE(Add(b, b).requires_grad());
  EXPECT_FALSE(Add(a, b).Detach().requires_grad());
}

TEST(TensorTest, ScalarAccessor) {
  EXPECT_FLOAT_EQ(ScalarConstant(2.5f).Scalar(), 2.5f);
}

TEST(TensorTest, SharedHandleSemantics) {
  Tensor a(Matrix(1, 1, 1.0f), true);
  Tensor b = a;  // same node
  b.mutable_value().At(0, 0) = 9.0f;
  EXPECT_FLOAT_EQ(a.value().At(0, 0), 9.0f);
}

TEST(BackwardTest, DiamondGraphAccumulates) {
  // loss = sum(x + x^2): both branches contribute to x's gradient.
  Tensor x(Matrix(1, 1, 3.0f), true);
  Tensor loss = SumAll(Add(x, Square(x)));
  Backward(loss);
  EXPECT_FLOAT_EQ(x.grad().At(0, 0), 1.0f + 2.0f * 3.0f);
}

TEST(BackwardTest, DeepChain) {
  Tensor x(Matrix(1, 1, 1.0f), true);
  Tensor y = x;
  for (int i = 0; i < 50; ++i) y = Scale(y, 1.01f);
  Backward(SumAll(y));
  EXPECT_NEAR(x.grad().At(0, 0), std::pow(1.01f, 50.0f), 1e-3f);
}

TEST(BackwardTest, RepeatedBackwardAccumulates) {
  Tensor x(Matrix(1, 1, 2.0f), true);
  Tensor loss = SumAll(Square(x));
  Backward(loss);
  float first = x.grad().At(0, 0);
  Tensor loss2 = SumAll(Square(x));
  Backward(loss2);
  EXPECT_FLOAT_EQ(x.grad().At(0, 0), 2.0f * first);
}

TEST(BackwardTest, UnreachableBranchUntouched) {
  Tensor x(Matrix(1, 1, 1.0f), true);
  Tensor y(Matrix(1, 1, 1.0f), true);
  Tensor unused = Square(y);  // not part of the loss graph
  Backward(SumAll(Square(x)));
  EXPECT_FLOAT_EQ(y.grad().Norm(), 0.0f);
  (void)unused;
}

TEST(BackwardTest, WideFanIn) {
  Tensor x(Matrix(1, 4, 1.0f), true);
  std::vector<Tensor> parts;
  for (int i = 0; i < 16; ++i) parts.push_back(Scale(x, 1.0f));
  Tensor loss = SumAll(ConcatRows(parts));
  Backward(loss);
  for (int c = 0; c < 4; ++c) EXPECT_FLOAT_EQ(x.grad().At(0, c), 16.0f);
}

TEST(BackwardTest, ConstantsReceiveNoGradient) {
  Tensor c = Constant(TestMatrix(3, 3, 1.0f, 1));
  Tensor x(TestMatrix(3, 3, 1.0f, 2), true);
  Backward(SumAll(Mul(c, x)));
  // Constants don't track gradients; the call must not crash and the
  // variable's gradient equals the constant's values.
  for (int64_t i = 0; i < 9; ++i) {
    EXPECT_FLOAT_EQ(x.grad().data()[i], c.value().data()[i]);
  }
}

TEST(BackwardTest, GraphFreedAfterHandlesDrop) {
  // Building and dropping large graphs must not leak (tracked allocations
  // return to the baseline).
  Tensor x(Matrix(50, 50, 1.0f), true);
  int64_t before = util::MemoryTracker::Global().live_bytes();
  {
    Tensor y = Matmul(x, Transpose(x));
    for (int i = 0; i < 10; ++i) y = Relu(y);
    Backward(MeanAll(y));
  }
  x.ZeroGrad();
  EXPECT_LE(util::MemoryTracker::Global().live_bytes(), before + 16);
}

}  // namespace
}  // namespace cpgan::tensor
