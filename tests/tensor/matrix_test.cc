#include <gtest/gtest.h>

#include "tensor/matrix.h"
#include "tests/test_util.h"
#include "util/memory_tracker.h"

namespace cpgan::tensor {
namespace {

TEST(MatrixTest, ConstructionAndFill) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6);
  EXPECT_FLOAT_EQ(m.Sum(), 0.0f);
  m.Fill(2.0f);
  EXPECT_FLOAT_EQ(m.Sum(), 12.0f);
  Matrix filled(2, 2, 1.5f);
  EXPECT_FLOAT_EQ(filled.Sum(), 6.0f);
}

TEST(MatrixTest, CopyAndMove) {
  Matrix a(2, 2, 3.0f);
  Matrix b = a;
  b.At(0, 0) = 7.0f;
  EXPECT_FLOAT_EQ(a.At(0, 0), 3.0f);
  Matrix c = std::move(a);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_FLOAT_EQ(c.At(1, 1), 3.0f);
}

TEST(MatrixTest, AddScaleAxpy) {
  Matrix a(2, 2, 1.0f);
  Matrix b(2, 2, 2.0f);
  a.AddInPlace(b);
  EXPECT_FLOAT_EQ(a.At(0, 0), 3.0f);
  a.Scale(0.5f);
  EXPECT_FLOAT_EQ(a.At(1, 1), 1.5f);
  a.Axpy(2.0f, b);
  EXPECT_FLOAT_EQ(a.At(0, 1), 5.5f);
}

TEST(MatrixTest, NormAndTranspose) {
  Matrix m(1, 2);
  m.At(0, 0) = 3.0f;
  m.At(0, 1) = 4.0f;
  EXPECT_FLOAT_EQ(m.Norm(), 5.0f);
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 1);
  EXPECT_FLOAT_EQ(t.At(1, 0), 4.0f);
}

TEST(MatrixTest, MatmulMatchesManual) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  float counter = 1.0f;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) a.At(r, c) = counter++;
  }
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 2; ++c) b.At(r, c) = counter++;
  }
  Matrix out = Matmul(a, b);
  // Row 0 of a = [1 2 3]; col 0 of b = [7 9 11] -> 1*7+2*9+3*11 = 58.
  EXPECT_FLOAT_EQ(out.At(0, 0), 58.0f);
  EXPECT_EQ(out.rows(), 2);
  EXPECT_EQ(out.cols(), 2);
}

TEST(MatrixTest, MatmulVariantsAgree) {
  Matrix a = testing::TestMatrix(4, 5, 1.0f, 1);
  Matrix b = testing::TestMatrix(4, 3, 1.0f, 2);
  // MatmulTN(a, b) == Matmul(a^T, b)
  Matrix expected = Matmul(a.Transposed(), b);
  Matrix actual = MatmulTN(a, b);
  EXPECT_TRUE(actual.SameShape(expected));
  expected.Axpy(-1.0f, actual);
  EXPECT_LT(expected.Norm(), 1e-4f);

  Matrix c = testing::TestMatrix(3, 5, 1.0f, 3);
  // MatmulNT(a, c) == Matmul(a, c^T)
  Matrix expected2 = Matmul(a, c.Transposed());
  Matrix actual2 = MatmulNT(a, c);
  expected2.Axpy(-1.0f, actual2);
  EXPECT_LT(expected2.Norm(), 1e-4f);
}

TEST(MatrixTest, FillRandomRanges) {
  util::Rng rng(1);
  Matrix m(20, 20);
  m.FillUniform(rng, -2.0f, 2.0f);
  for (int64_t i = 0; i < m.size(); ++i) {
    EXPECT_GE(m.data()[i], -2.0f);
    EXPECT_LT(m.data()[i], 2.0f);
  }
  m.FillNormal(rng, 1.0f);
  EXPECT_NEAR(m.Sum() / m.size(), 0.0, 0.2);
}

TEST(MatrixTest, MemoryTracked) {
  int64_t before = util::MemoryTracker::Global().live_bytes();
  {
    Matrix m(100, 100);
    EXPECT_GE(util::MemoryTracker::Global().live_bytes(),
              before + 100 * 100 * static_cast<int64_t>(sizeof(float)));
  }
  EXPECT_EQ(util::MemoryTracker::Global().live_bytes(), before);
}

}  // namespace
}  // namespace cpgan::tensor
