#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "tensor/serialize.h"
#include "tests/test_util.h"
#include "train/fault.h"
#include "util/crc32.h"

namespace cpgan::tensor {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

/// Asserts that a failed load leaves `params` exactly as they were.
void ExpectLoadFailsUntouched(const std::string& path,
                              std::vector<Tensor>& params) {
  std::vector<Matrix> before;
  for (const Tensor& p : params) before.push_back(p.value());
  std::string err;
  ASSERT_FALSE(LoadParameters(params, path, &err));
  EXPECT_FALSE(err.empty());
  for (size_t i = 0; i < params.size(); ++i) {
    Matrix diff = before[i];
    diff.Axpy(-1.0f, params[i].value());
    EXPECT_FLOAT_EQ(diff.Norm(), 0.0f) << "tensor " << i << " was modified";
  }
}

TEST(SerializeTest, RoundTrip) {
  std::string path = TempPath("params.bin");
  std::vector<Tensor> params = {
      Tensor(cpgan::testing::TestMatrix(3, 4, 1.0f, 1), true),
      Tensor(cpgan::testing::TestMatrix(1, 7, 2.0f, 2), true)};
  ASSERT_TRUE(SaveParameters(params, path));

  std::vector<Tensor> loaded = {Tensor(Matrix(3, 4), true),
                                Tensor(Matrix(1, 7), true)};
  ASSERT_TRUE(LoadParameters(loaded, path));
  for (size_t i = 0; i < params.size(); ++i) {
    Matrix diff = params[i].value();
    diff.Axpy(-1.0f, loaded[i].value());
    EXPECT_FLOAT_EQ(diff.Norm(), 0.0f);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchFails) {
  std::string path = TempPath("mismatch.bin");
  std::vector<Tensor> params = {Tensor(Matrix(2, 2, 1.0f), true)};
  ASSERT_TRUE(SaveParameters(params, path));
  std::vector<Tensor> wrong = {Tensor(Matrix(2, 3), true)};
  EXPECT_FALSE(LoadParameters(wrong, path));
  std::remove(path.c_str());
}

TEST(SerializeTest, CountMismatchFails) {
  std::string path = TempPath("count.bin");
  std::vector<Tensor> params = {Tensor(Matrix(2, 2, 1.0f), true)};
  ASSERT_TRUE(SaveParameters(params, path));
  std::vector<Tensor> wrong = {Tensor(Matrix(2, 2), true),
                               Tensor(Matrix(2, 2), true)};
  EXPECT_FALSE(LoadParameters(wrong, path));
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  std::vector<Tensor> params = {Tensor(Matrix(1, 1), true)};
  EXPECT_FALSE(LoadParameters(params, TempPath("does_not_exist.bin")));
  EXPECT_FALSE(SaveParameters(params, "/nonexistent_dir/x.bin"));
}

TEST(SerializeTest, SaveLeavesNoTemporaryBehind) {
  std::string path = TempPath("atomic.bin");
  std::vector<Tensor> params = {Tensor(Matrix(2, 2, 1.0f), true)};
  ASSERT_TRUE(SaveParameters(params, path));
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
  std::remove(path.c_str());
}

TEST(SerializeTest, TruncatedFileFailsAndParamsUntouched) {
  std::string path = TempPath("trunc.bin");
  std::vector<Tensor> params = {
      Tensor(cpgan::testing::TestMatrix(3, 5, 1.0f, 1), true)};
  ASSERT_TRUE(SaveParameters(params, path));
  int64_t size = train::FileSize(path);
  ASSERT_GT(size, 0);
  for (int64_t keep : {int64_t{2}, int64_t{10}, size / 2, size - 1}) {
    ASSERT_TRUE(SaveParameters(params, path));
    ASSERT_TRUE(train::TruncateFile(path, keep));
    std::vector<Tensor> dest = {
        Tensor(cpgan::testing::TestMatrix(3, 5, 2.0f, 9), true)};
    ExpectLoadFailsUntouched(path, dest);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, BitFlipFailsChecksum) {
  std::string path = TempPath("flip.bin");
  std::vector<Tensor> params = {
      Tensor(cpgan::testing::TestMatrix(4, 4, 1.0f, 2), true)};
  ASSERT_TRUE(SaveParameters(params, path));
  int64_t size = train::FileSize(path);
  ASSERT_GT(size, 0);
  // Header, payload, and trailing-checksum corruption must all be caught.
  for (int64_t offset : {int64_t{5}, size / 2, size - 1}) {
    ASSERT_TRUE(SaveParameters(params, path));
    ASSERT_TRUE(train::FlipByte(path, offset));
    std::vector<Tensor> dest = {
        Tensor(cpgan::testing::TestMatrix(4, 4, 3.0f, 8), true)};
    ExpectLoadFailsUntouched(path, dest);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, WrongVersionFails) {
  std::string path = TempPath("version.bin");
  // Hand-craft a v2 container claiming version 7 (header otherwise valid).
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  uint32_t magic = 0x32475043u;  // "CPG2"
  uint32_t version = 7;
  uint32_t count = 0;
  util::Crc32 crc;
  crc.Update(&magic, sizeof(magic));
  crc.Update(&version, sizeof(version));
  crc.Update(&count, sizeof(count));
  uint32_t digest = crc.Digest();
  ASSERT_EQ(std::fwrite(&magic, sizeof(magic), 1, f), 1u);
  ASSERT_EQ(std::fwrite(&version, sizeof(version), 1, f), 1u);
  ASSERT_EQ(std::fwrite(&count, sizeof(count), 1, f), 1u);
  ASSERT_EQ(std::fwrite(&digest, sizeof(digest), 1, f), 1u);
  std::fclose(f);
  std::vector<Tensor> params;
  std::string err;
  EXPECT_FALSE(LoadParameters(params, path, &err));
  EXPECT_NE(err.find("version"), std::string::npos) << err;
  std::remove(path.c_str());
}

TEST(SerializeTest, LegacyV1FilesStillLoad) {
  std::string path = TempPath("legacy_v1.bin");
  // Write the v1 layout by hand: magic "CPGN", count, then (rows, cols,
  // floats) per tensor — no version, no checksums.
  Matrix original = cpgan::testing::TestMatrix(2, 3, 1.0f, 4);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  uint32_t magic = 0x4350474Eu;
  uint32_t count = 1;
  int32_t rows = original.rows();
  int32_t cols = original.cols();
  ASSERT_EQ(std::fwrite(&magic, sizeof(magic), 1, f), 1u);
  ASSERT_EQ(std::fwrite(&count, sizeof(count), 1, f), 1u);
  ASSERT_EQ(std::fwrite(&rows, sizeof(rows), 1, f), 1u);
  ASSERT_EQ(std::fwrite(&cols, sizeof(cols), 1, f), 1u);
  ASSERT_EQ(std::fwrite(original.data(), sizeof(float),
                        static_cast<size_t>(original.size()), f),
            static_cast<size_t>(original.size()));
  std::fclose(f);

  std::vector<Tensor> params = {Tensor(Matrix(2, 3), true)};
  std::string err;
  ASSERT_TRUE(LoadParameters(params, path, &err)) << err;
  Matrix diff = original;
  diff.Axpy(-1.0f, params[0].value());
  EXPECT_FLOAT_EQ(diff.Norm(), 0.0f);

  // A truncated v1 file must fail without touching the destination.
  ASSERT_TRUE(train::TruncateFile(path, train::FileSize(path) - 4));
  std::vector<Tensor> dest = {
      Tensor(cpgan::testing::TestMatrix(2, 3, 2.0f, 6), true)};
  ExpectLoadFailsUntouched(path, dest);
  std::remove(path.c_str());
}

TEST(SerializeTest, EmbeddedTensorBlockRoundTrips) {
  std::string path = TempPath("embedded.bin");
  std::vector<Tensor> params = {
      Tensor(cpgan::testing::TestMatrix(3, 2, 1.0f, 5), true)};
  // Write a foreign header, then the tensor block, then a trailer.
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  uint64_t outer_header = 0xDEADBEEFu;
  ASSERT_EQ(std::fwrite(&outer_header, sizeof(outer_header), 1, f), 1u);
  ASSERT_TRUE(WriteTensorBlock(f, params));
  uint64_t trailer = 0xCAFEu;
  ASSERT_EQ(std::fwrite(&trailer, sizeof(trailer), 1, f), 1u);
  std::fclose(f);

  f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  uint64_t header_read = 0;
  ASSERT_EQ(std::fread(&header_read, sizeof(header_read), 1, f), 1u);
  std::vector<Matrix> loaded;
  std::string err;
  ASSERT_TRUE(ReadTensorBlock(f, &loaded, &err)) << err;
  uint64_t trailer_read = 0;
  ASSERT_EQ(std::fread(&trailer_read, sizeof(trailer_read), 1, f), 1u);
  EXPECT_EQ(trailer_read, 0xCAFEu);
  std::fclose(f);
  ASSERT_EQ(loaded.size(), 1u);
  Matrix diff = params[0].value();
  diff.Axpy(-1.0f, loaded[0]);
  EXPECT_FLOAT_EQ(diff.Norm(), 0.0f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cpgan::tensor
