#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "tensor/serialize.h"
#include "tests/test_util.h"

namespace cpgan::tensor {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializeTest, RoundTrip) {
  std::string path = TempPath("params.bin");
  std::vector<Tensor> params = {
      Tensor(cpgan::testing::TestMatrix(3, 4, 1.0f, 1), true),
      Tensor(cpgan::testing::TestMatrix(1, 7, 2.0f, 2), true)};
  ASSERT_TRUE(SaveParameters(params, path));

  std::vector<Tensor> loaded = {Tensor(Matrix(3, 4), true),
                                Tensor(Matrix(1, 7), true)};
  ASSERT_TRUE(LoadParameters(loaded, path));
  for (size_t i = 0; i < params.size(); ++i) {
    Matrix diff = params[i].value();
    diff.Axpy(-1.0f, loaded[i].value());
    EXPECT_FLOAT_EQ(diff.Norm(), 0.0f);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchFails) {
  std::string path = TempPath("mismatch.bin");
  std::vector<Tensor> params = {Tensor(Matrix(2, 2, 1.0f), true)};
  ASSERT_TRUE(SaveParameters(params, path));
  std::vector<Tensor> wrong = {Tensor(Matrix(2, 3), true)};
  EXPECT_FALSE(LoadParameters(wrong, path));
  std::remove(path.c_str());
}

TEST(SerializeTest, CountMismatchFails) {
  std::string path = TempPath("count.bin");
  std::vector<Tensor> params = {Tensor(Matrix(2, 2, 1.0f), true)};
  ASSERT_TRUE(SaveParameters(params, path));
  std::vector<Tensor> wrong = {Tensor(Matrix(2, 2), true),
                               Tensor(Matrix(2, 2), true)};
  EXPECT_FALSE(LoadParameters(wrong, path));
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  std::vector<Tensor> params = {Tensor(Matrix(1, 1), true)};
  EXPECT_FALSE(LoadParameters(params, TempPath("does_not_exist.bin")));
  EXPECT_FALSE(SaveParameters(params, "/nonexistent_dir/x.bin"));
}

}  // namespace
}  // namespace cpgan::tensor
