// Bitwise determinism of the parallel kernel layer across thread counts.
//
// The thread-pool contract (src/util/thread_pool.h) is that chunk boundaries
// are a pure function of the range and the grain, and that every kernel
// either writes disjoint state per chunk or reduces per-chunk partials in
// chunk order. These tests pin that contract end to end: each kernel — and a
// whole CPGAN training run — must produce byte-identical results with 1, 2,
// and 8 threads. Sizes are chosen above the serial-path thresholds so the
// blocked/parallel code paths actually execute.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cpgan.h"
#include "data/datasets.h"
#include "graph/algorithms.h"
#include "graph/graph.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "tensor/sparse.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cpgan::tensor {
namespace {

using cpgan::testing::TestMatrix;

const std::vector<int> kThreadCounts = {1, 2, 8};

bool SameBytes(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Runs `fn` once per thread count and checks every result against the
/// single-thread baseline, byte for byte.
void ExpectSameMatrixForAllThreadCounts(
    const std::function<Matrix()>& fn, const std::string& what) {
  util::ThreadPool::SetGlobalThreads(1);
  Matrix baseline = fn();
  for (int threads : kThreadCounts) {
    util::ThreadPool::SetGlobalThreads(threads);
    Matrix got = fn();
    EXPECT_TRUE(SameBytes(baseline, got))
        << what << " differs at " << threads << " threads";
  }
  util::ThreadPool::SetGlobalThreads(1);
}

// 300x70 * 70x90 = 1.9M flops: far above the serial-matmul threshold, not a
// multiple of the 64-wide tiles, so the blocked + packed path runs with
// partial edge tiles.
TEST(ThreadsDeterminismTest, DenseMatmulBitwiseIdentical) {
  Matrix a = TestMatrix(300, 70, 1.0f, 1);
  Matrix b = TestMatrix(70, 90, 1.0f, 2);
  ExpectSameMatrixForAllThreadCounts([&] { return Matmul(a, b); }, "Matmul");
}

TEST(ThreadsDeterminismTest, MatmulTNBitwiseIdentical) {
  Matrix a = TestMatrix(70, 300, 1.0f, 3);  // a^T is 300x70
  Matrix b = TestMatrix(70, 90, 1.0f, 4);
  ExpectSameMatrixForAllThreadCounts([&] { return MatmulTN(a, b); },
                                     "MatmulTN");
}

TEST(ThreadsDeterminismTest, MatmulNTBitwiseIdentical) {
  Matrix a = TestMatrix(300, 70, 1.0f, 5);
  Matrix b = TestMatrix(90, 70, 1.0f, 6);  // b^T is 70x90
  ExpectSameMatrixForAllThreadCounts([&] { return MatmulNT(a, b); },
                                     "MatmulNT");
}

TEST(ThreadsDeterminismTest, TransposedBitwiseIdentical) {
  Matrix a = TestMatrix(301, 203, 1.0f, 7);
  ExpectSameMatrixForAllThreadCounts([&] { return a.Transposed(); },
                                     "Transposed");
}

TEST(ThreadsDeterminismTest, SpmmBitwiseIdentical) {
  graph::Graph g = data::MakeScaledDataset("google_like", 500, 13);
  SparseMatrix adj = NormalizedAdjacency(g.num_nodes(), g.Edges());
  Matrix x = TestMatrix(g.num_nodes(), 48, 1.0f, 8);
  ExpectSameMatrixForAllThreadCounts([&] { return adj.Multiply(x); },
                                     "SparseMatrix::Multiply");
  ExpectSameMatrixForAllThreadCounts(
      [&] { return adj.MultiplyTransposed(x); },
      "SparseMatrix::MultiplyTransposed");
}

// Forward + backward through the parallelized elementwise / broadcast /
// reduction ops; gradients must match bitwise too (the backward passes use
// the same chunk-ordered reductions).
TEST(ThreadsDeterminismTest, OpsForwardBackwardBitwiseIdentical) {
  Matrix xm = TestMatrix(600, 80, 1.0f, 9);
  Matrix vm = TestMatrix(1, 80, 1.0f, 10);
  Matrix targets = TestMatrix(600, 80, 0.5f, 11);
  for (int64_t i = 0; i < targets.size(); ++i) {
    targets.data()[i] = targets.data()[i] > 0.0f ? 1.0f : 0.0f;
  }

  auto run = [&](std::vector<Matrix>* grads) {
    Tensor x(xm, /*requires_grad=*/true);
    Tensor v(vm, /*requires_grad=*/true);
    Tensor h = MulRowVec(AddRowVec(x, v), v);
    Tensor s = SoftmaxRows(h);
    Tensor loss = Add(BceWithLogits(h, targets, 2.0f),
                      Add(SumAll(ColMean(s)), SumAll(RowL2Norm(h))));
    Backward(loss);
    grads->push_back(x.grad());
    grads->push_back(v.grad());
    Matrix lv(1, 1);
    lv.At(0, 0) = loss.value().At(0, 0);
    grads->push_back(lv);
  };

  util::ThreadPool::SetGlobalThreads(1);
  std::vector<Matrix> baseline;
  run(&baseline);
  for (int threads : kThreadCounts) {
    util::ThreadPool::SetGlobalThreads(threads);
    std::vector<Matrix> got;
    run(&got);
    ASSERT_EQ(baseline.size(), got.size());
    for (size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_TRUE(SameBytes(baseline[i], got[i]))
          << "grad/loss " << i << " differs at " << threads << " threads";
    }
  }
  util::ThreadPool::SetGlobalThreads(1);
}

TEST(ThreadsDeterminismTest, GraphMetricsIdenticalAcrossThreadCounts) {
  graph::Graph g = data::MakeScaledDataset("facebook_like", 700, 17);

  util::ThreadPool::SetGlobalThreads(1);
  std::vector<double> base_coeffs = graph::LocalClusteringCoefficients(g);
  int64_t base_triangles = graph::CountTriangles(g);
  util::Rng base_rng(23);
  double base_cpl = graph::CharacteristicPathLength(g, base_rng, 64);

  for (int threads : kThreadCounts) {
    util::ThreadPool::SetGlobalThreads(threads);
    std::vector<double> coeffs = graph::LocalClusteringCoefficients(g);
    ASSERT_EQ(base_coeffs.size(), coeffs.size());
    EXPECT_EQ(0, std::memcmp(base_coeffs.data(), coeffs.data(),
                             coeffs.size() * sizeof(double)))
        << "clustering differs at " << threads << " threads";
    EXPECT_EQ(base_triangles, graph::CountTriangles(g));
    util::Rng rng(23);  // same seed => same sampled sources
    EXPECT_EQ(base_cpl, graph::CharacteristicPathLength(g, rng, 64))
        << "CPL differs at " << threads << " threads";
  }
  util::ThreadPool::SetGlobalThreads(1);
}

// End-to-end: a short CPGAN training run (forward + backward + optimizer,
// exercising matmul, SpMM, softmax, reductions, graph sampling) must yield
// bitwise-identical losses and weight files for every thread count.
TEST(ThreadsDeterminismTest, CpganTrainingStepBitwiseIdentical) {
  graph::Graph observed = data::MakeScaledDataset("google_like", 256, 5);

  core::CpganConfig config;
  config.epochs = 3;
  config.subgraph_size = 64;
  config.feature_dim = 16;
  config.hidden_dim = 32;
  config.latent_dim = 16;
  config.seed = 11;

  auto run = [&](int threads, std::vector<float>* losses,
                 std::string* weight_bytes) {
    util::ThreadPool::SetGlobalThreads(threads);
    core::Cpgan model(config);
    core::TrainStats stats = model.Fit(observed);
    losses->insert(losses->end(), stats.d_loss.begin(), stats.d_loss.end());
    losses->insert(losses->end(), stats.g_loss.begin(), stats.g_loss.end());
    std::string path = ::testing::TempDir() + "/cpgan_threads_" +
                       std::to_string(threads) + ".bin";
    ASSERT_TRUE(model.SaveWeights(path));
    FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      weight_bytes->append(buf, got);
    }
    std::fclose(f);
    std::remove(path.c_str());
  };

  std::vector<float> base_losses;
  std::string base_weights;
  run(1, &base_losses, &base_weights);
  ASSERT_FALSE(base_losses.empty());
  ASSERT_FALSE(base_weights.empty());

  for (int threads : kThreadCounts) {
    std::vector<float> losses;
    std::string weights;
    run(threads, &losses, &weights);
    ASSERT_EQ(base_losses.size(), losses.size());
    EXPECT_EQ(0, std::memcmp(base_losses.data(), losses.data(),
                             losses.size() * sizeof(float)))
        << "losses differ at " << threads << " threads";
    EXPECT_EQ(base_weights, weights)
        << "weight file differs at " << threads << " threads";
  }
  util::ThreadPool::SetGlobalThreads(1);
}

}  // namespace
}  // namespace cpgan::tensor
