#include <cmath>

#include <gtest/gtest.h>

#include "baselines/condgen.h"
#include "baselines/gran.h"
#include "baselines/graphite.h"
#include "baselines/graphrnn.h"
#include "baselines/netgan.h"
#include "baselines/sbmgnn.h"
#include "baselines/vgae.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace cpgan::baselines {
namespace {

graph::Graph SmallGraph(uint64_t seed = 21) {
  data::CommunityGraphParams params;
  params.num_nodes = 90;
  params.num_edges = 300;
  params.num_communities = 5;
  util::Rng rng(seed);
  return data::MakeCommunityGraph(params, rng);
}

VgaeConfig FastVgaeConfig() {
  VgaeConfig config;
  config.epochs = 30;
  config.hidden_dim = 16;
  config.latent_dim = 8;
  config.feature_dim = 6;
  return config;
}

template <typename Model>
void ExpectFitGenerateWorks(Model& model, const graph::Graph& observed) {
  LearnedTrainStats stats = model.Fit(observed);
  EXPECT_FALSE(stats.loss.empty());
  for (float loss : stats.loss) EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(stats.train_seconds, 0.0);
  graph::Graph out = model.Generate();
  EXPECT_EQ(out.num_nodes(), observed.num_nodes());
  EXPECT_GT(out.num_edges(), 0);
  EXPECT_LE(out.num_edges(), 2 * observed.num_edges());
}

TEST(VgaeTest, FitGenerateSmoke) {
  graph::Graph g = SmallGraph();
  Vgae model(FastVgaeConfig());
  ExpectFitGenerateWorks(model, g);
}

TEST(VgaeTest, LossDecreases) {
  graph::Graph g = SmallGraph();
  VgaeConfig config = FastVgaeConfig();
  config.epochs = 120;
  Vgae model(config);
  LearnedTrainStats stats = model.Fit(g);
  EXPECT_LT(stats.loss.back(), stats.loss.front());
}

TEST(VgaeTest, EdgeProbabilitiesDiscriminate) {
  graph::Graph g = SmallGraph();
  VgaeConfig config = FastVgaeConfig();
  config.epochs = 200;
  Vgae model(config);
  model.Fit(g);
  std::vector<graph::Edge> pos = g.Edges();
  std::vector<graph::Edge> neg;
  util::Rng rng(1);
  while (neg.size() < pos.size()) {
    int u = static_cast<int>(rng.UniformInt(g.num_nodes()));
    int v = static_cast<int>(rng.UniformInt(g.num_nodes()));
    if (u == v || g.HasEdge(u, v)) continue;
    neg.emplace_back(u, v);
  }
  std::vector<double> p_pos = model.EdgeProbabilities(pos);
  std::vector<double> p_neg = model.EdgeProbabilities(neg);
  double mean_pos = 0.0;
  double mean_neg = 0.0;
  for (double p : p_pos) mean_pos += p;
  for (double p : p_neg) mean_neg += p;
  EXPECT_GT(mean_pos / p_pos.size(), mean_neg / p_neg.size());
}

TEST(GraphiteTest, FitGenerateSmoke) {
  graph::Graph g = SmallGraph(22);
  Graphite model(FastVgaeConfig());
  ExpectFitGenerateWorks(model, g);
}

TEST(SbmgnnTest, FitGenerateSmoke) {
  graph::Graph g = SmallGraph(23);
  Sbmgnn model(FastVgaeConfig(), /*num_blocks=*/8);
  ExpectFitGenerateWorks(model, g);
}

TEST(NetganTest, FitGenerateSmoke) {
  graph::Graph g = SmallGraph(24);
  NetganConfig config;
  config.epochs = 15;
  config.walks_per_epoch = 16;
  config.walk_length = 8;
  Netgan model(config);
  ExpectFitGenerateWorks(model, g);
}

TEST(GraphRnnTest, FitGenerateSmoke) {
  graph::Graph g = SmallGraph(25);
  GraphRnnConfig config;
  config.epochs = 10;
  GraphRnnS model(config);
  LearnedTrainStats stats = model.Fit(g);
  EXPECT_FALSE(stats.loss.empty());
  graph::Graph out = model.Generate();
  EXPECT_EQ(out.num_nodes(), g.num_nodes());
}

TEST(CondGenTest, FitGenerateSmoke) {
  graph::Graph g = SmallGraph(26);
  CondGenR model(/*epochs=*/20, /*seed=*/2);
  ExpectFitGenerateWorks(model, g);
}

TEST(FeasibilityTest, ThresholdsMatchPaperPattern) {
  // The simulated memory budget must reproduce which cells read OOM:
  // GraphRNN-S dies first, then NetGAN/CondGen, then the VGAE family.
  GraphRnnS graphrnn;
  Netgan netgan;
  CondGenR condgen;
  Vgae vgae;
  EXPECT_LT(graphrnn.max_feasible_nodes(), netgan.max_feasible_nodes() + 1);
  EXPECT_LE(netgan.max_feasible_nodes(), vgae.max_feasible_nodes());
  EXPECT_FALSE(vgae.FeasibleFor(1400));   // facebook_like -> OOM
  EXPECT_TRUE(vgae.FeasibleFor(1200));    // pubmed_like -> runs
  EXPECT_FALSE(netgan.FeasibleFor(1200)); // NetGAN OOM on pubmed
  EXPECT_TRUE(netgan.FeasibleFor(840));   // NetGAN runs on pointcloud
  EXPECT_FALSE(graphrnn.FeasibleFor(840));  // GraphRNN OOM on pointcloud
  EXPECT_TRUE(graphrnn.FeasibleFor(560));   // GraphRNN runs on citeseer
}

TEST(FeasibilityTest, InfeasibleFitAborts) {
  Vgae model;
  EXPECT_FALSE(model.FeasibleFor(5000));
  EXPECT_DEATH(model.Fit(graph::Graph(5000)), "CHECK");
}

}  // namespace
}  // namespace cpgan::baselines

namespace cpgan::baselines {
namespace {

TEST(GranTest, FitGenerateSmoke) {
  graph::Graph g = SmallGraph(27);
  GranConfig config;
  config.epochs = 10;
  Gran model(config);
  LearnedTrainStats stats = model.Fit(g);
  EXPECT_FALSE(stats.loss.empty());
  for (float loss : stats.loss) EXPECT_TRUE(std::isfinite(loss));
  graph::Graph out = model.Generate();
  EXPECT_EQ(out.num_nodes(), g.num_nodes());
}

TEST(GranTest, LossDecreasesWithTraining) {
  graph::Graph g = SmallGraph(28);
  GranConfig config;
  config.epochs = 60;
  Gran model(config);
  LearnedTrainStats stats = model.Fit(g);
  EXPECT_LT(stats.loss.back(), stats.loss.front());
}

}  // namespace
}  // namespace cpgan::baselines
