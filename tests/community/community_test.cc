#include <gtest/gtest.h>

#include "community/label_propagation.h"
#include "community/louvain.h"
#include "community/metrics.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace cpgan::community {
namespace {

graph::Graph TwoCliquesWithBridge() {
  std::vector<graph::Edge> edges;
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) {
      edges.emplace_back(i, j);
      edges.emplace_back(6 + i, 6 + j);
    }
  }
  edges.emplace_back(0, 6);
  return graph::Graph(12, edges);
}

TEST(PartitionTest, CompactsLabels) {
  Partition p({7, 7, 3, 3, 9});
  EXPECT_EQ(p.num_communities(), 3);
  EXPECT_EQ(p.label(0), p.label(1));
  EXPECT_NE(p.label(0), p.label(2));
  EXPECT_EQ(p.Sizes(), (std::vector<int>{2, 2, 1}));
  auto communities = p.Communities();
  EXPECT_EQ(communities.size(), 3u);
}

TEST(ModularityTest, PerfectSplitPositive) {
  graph::Graph g = TwoCliquesWithBridge();
  std::vector<int> labels(12, 0);
  for (int i = 6; i < 12; ++i) labels[i] = 1;
  double q_good = Modularity(g, Partition(labels));
  double q_trivial = Modularity(g, Partition(std::vector<int>(12, 0)));
  EXPECT_GT(q_good, 0.3);
  EXPECT_NEAR(q_trivial, 0.0, 1e-9);
  EXPECT_GT(q_good, q_trivial);
}

TEST(LouvainTest, FindsTwoCliques) {
  graph::Graph g = TwoCliquesWithBridge();
  util::Rng rng(1);
  LouvainResult result = Louvain(g, rng);
  const Partition& p = result.FinalPartition();
  EXPECT_EQ(p.num_communities(), 2);
  for (int i = 1; i < 6; ++i) EXPECT_EQ(p.label(i), p.label(0));
  for (int i = 7; i < 12; ++i) EXPECT_EQ(p.label(i), p.label(6));
  EXPECT_NE(p.label(0), p.label(6));
  EXPECT_GT(result.modularity, 0.3);
}

TEST(LouvainTest, HandlesEmptyAndSingleton) {
  util::Rng rng(2);
  LouvainResult empty = Louvain(graph::Graph(0), rng);
  EXPECT_EQ(empty.FinalPartition().num_nodes(), 0);
  LouvainResult singleton = Louvain(graph::Graph(3), rng);
  EXPECT_EQ(singleton.FinalPartition().num_nodes(), 3);
}

class LouvainPlantedTest : public ::testing::TestWithParam<int> {};

TEST_P(LouvainPlantedTest, RecoversPlantedPartition) {
  data::CommunityGraphParams params;
  params.num_nodes = 200;
  params.num_edges = 900;
  params.num_communities = 8;
  params.intra_fraction = 0.95;
  params.community_size_skew = 0.0;
  util::Rng rng(GetParam());
  graph::Graph g = data::MakeCommunityGraph(params, rng);

  // Ground truth from the deterministic allocation in MakeCommunityGraph.
  std::vector<int> truth(200);
  for (int v = 0; v < 200; ++v) truth[v] = (v * 8) / 200;

  util::Rng det_rng(GetParam() + 100);
  LouvainResult result = Louvain(g, det_rng);
  double nmi =
      NormalizedMutualInformation(Partition(truth), result.FinalPartition());
  EXPECT_GT(nmi, 0.7);
  EXPECT_GT(result.modularity, 0.4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LouvainPlantedTest,
                         ::testing::Values(11, 22, 33, 44));

TEST(LouvainTest, HierarchyCoarsens) {
  data::CommunityGraphParams params;
  params.num_nodes = 300;
  params.num_edges = 1500;
  params.num_communities = 12;
  util::Rng rng(5);
  graph::Graph g = data::MakeCommunityGraph(params, rng);
  LouvainResult result = Louvain(g, rng);
  ASSERT_GE(result.levels.size(), 1u);
  for (size_t l = 1; l < result.levels.size(); ++l) {
    EXPECT_LE(result.levels[l].num_communities(),
              result.levels[l - 1].num_communities());
  }
}

TEST(LabelPropagationTest, FindsTwoCliques) {
  graph::Graph g = TwoCliquesWithBridge();
  util::Rng rng(6);
  Partition p = LabelPropagation(g, rng);
  EXPECT_LE(p.num_communities(), 3);
  for (int i = 1; i < 6; ++i) EXPECT_EQ(p.label(i), p.label(1));
  for (int i = 7; i < 12; ++i) EXPECT_EQ(p.label(i), p.label(7));
}

TEST(MetricsTest, IdenticalPartitionsScoreOne) {
  Partition a({0, 0, 1, 1, 2, 2});
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, a), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation(a, a), 1.0);
  EXPECT_DOUBLE_EQ(RandIndex(a, a), 1.0);
}

TEST(MetricsTest, PermutedLabelsScoreOne) {
  Partition a({0, 0, 1, 1, 2, 2});
  Partition b({2, 2, 0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, b), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation(a, b), 1.0);
}

TEST(MetricsTest, OrthogonalPartitionsScoreLow) {
  // a splits first/second half, b alternates: MI is 0 by construction.
  Partition a({0, 0, 0, 0, 1, 1, 1, 1});
  Partition b({0, 1, 0, 1, 0, 1, 0, 1});
  EXPECT_NEAR(NormalizedMutualInformation(a, b), 0.0, 1e-9);
  EXPECT_LE(AdjustedRandIndex(a, b), 0.05);
}

TEST(MetricsTest, SymmetricInArguments) {
  Partition a({0, 0, 1, 1, 1, 2});
  Partition b({0, 1, 1, 1, 2, 2});
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, b), AdjustedRandIndex(b, a));
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation(a, b),
                   NormalizedMutualInformation(b, a));
}

TEST(MetricsTest, ContingencyTableSums) {
  Partition a({0, 0, 1, 1});
  Partition b({0, 1, 0, 1});
  ContingencyTable t(a, b);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t.total(), 4);
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(t.row_sum(i), 2);
    EXPECT_EQ(t.col_sum(i), 2);
  }
  EXPECT_EQ(t.count(0, 0), 1);
}

TEST(MetricsTest, EntropyOfUniformPartition) {
  Partition p({0, 1, 2, 3});
  EXPECT_NEAR(PartitionEntropy(p), std::log(4.0), 1e-9);
}

TEST(MetricsTest, MutualInformationNonNegative) {
  Partition a({0, 0, 1, 1, 2});
  Partition b({1, 0, 1, 0, 1});
  EXPECT_GE(MutualInformation(a, b), -1e-12);
}

}  // namespace
}  // namespace cpgan::community
