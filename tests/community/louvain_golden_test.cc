// Golden-value pins for Louvain on fixed-seed fixtures: exact partitions
// and bitwise modularity (hex double literals), asserted at 1, 2 and 8
// threads. The values were captured from the pre-flat-CSR implementation,
// so this test is the regression fence for the hot-path rewrite: any change
// to visit order, gain arithmetic, compaction order or the modularity
// accumulation shows up as a label or last-ulp modularity diff here.

#include <vector>

#include <gtest/gtest.h>

#include "community/louvain.h"
#include "data/synthetic.h"
#include "graph/graph.h"
#include "testing/diff_harness.h"
#include "util/rng.h"

namespace cpgan {
namespace {

graph::Graph TwoCliquesWithBridge() {
  std::vector<graph::Edge> edges;
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) {
      edges.emplace_back(i, j);
      edges.emplace_back(6 + i, 6 + j);
    }
  }
  edges.emplace_back(0, 6);
  return graph::Graph(12, edges);
}

TEST(LouvainGoldenTest, TwoCliquesWithBridge) {
  const graph::Graph g = TwoCliquesWithBridge();
  for (int threads : {1, 2, 8}) {
    testing::ScopedThreads scoped(threads);
    util::Rng rng(1);
    const community::LouvainResult r = community::Louvain(g, rng);
    ASSERT_EQ(r.levels.size(), 2u) << "threads=" << threads;
    const community::Partition& p = r.FinalPartition();
    ASSERT_EQ(p.num_nodes(), 12);
    EXPECT_EQ(p.num_communities(), 2);
    for (int v = 0; v < 12; ++v) {
      EXPECT_EQ(p.label(v), v < 6 ? 0 : 1) << "node " << v;
    }
    // A small rational (the graph has 31 edges), pinned as the exact bit
    // pattern the double arithmetic produces.
    EXPECT_EQ(r.modularity, 0x1.def7bdef7bdfp-2) << "threads=" << threads;
  }
}

TEST(LouvainGoldenTest, Sbm200RecoversPlantedBlocks) {
  // 200-node, 900-edge SBM with 8 planted 25-node blocks at 95% intra
  // fraction (graph seed 11, Louvain seed 111): Louvain recovers the blocks
  // exactly, and first-seen compaction numbers them in node order, so node v
  // gets label v / 25.
  data::CommunityGraphParams params;
  params.num_nodes = 200;
  params.num_edges = 900;
  params.num_communities = 8;
  params.intra_fraction = 0.95;
  params.community_size_skew = 0.0;
  util::Rng graph_rng(11);
  const graph::Graph g = data::MakeCommunityGraph(params, graph_rng);
  for (int threads : {1, 2, 8}) {
    testing::ScopedThreads scoped(threads);
    util::Rng rng(111);
    const community::LouvainResult r = community::Louvain(g, rng);
    ASSERT_EQ(r.levels.size(), 2u) << "threads=" << threads;
    const community::Partition& p = r.FinalPartition();
    ASSERT_EQ(p.num_nodes(), 200);
    EXPECT_EQ(p.num_communities(), 8);
    for (int v = 0; v < 200; ++v) {
      EXPECT_EQ(p.label(v), v / 25) << "node " << v;
    }
    EXPECT_EQ(r.modularity, 0x1.a43fa7a5d3cb2p-1) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace cpgan
