// End-to-end smoke test for the observability flags the CLI exposes
// (--metrics-out / --profile / --trace): trains a tiny CPGAN through the
// same CpganConfig fields examples/cpgan_cli.cpp sets and checks that the
// run log has one valid JSONL record per epoch and the Chrome trace parses.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/cpgan.h"
#include "data/synthetic.h"
#include "obs/json.h"
#include "obs/run_logger.h"
#include "obs/trace.h"
#include "util/fileio.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace cpgan::core {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

graph::Graph TinyGraph() {
  data::CommunityGraphParams params;
  params.num_nodes = 60;
  params.num_edges = 180;
  params.num_communities = 3;
  params.intra_fraction = 0.9;
  util::Rng rng(5);
  return data::MakeCommunityGraph(params, rng);
}

TEST(CliSmokeTest, MetricsOutProfileAndTraceProduceValidArtifacts) {
  const int kEpochs = 4;
  std::string metrics_path = TempPath("cli_smoke_run.jsonl");
  std::string trace_path = TempPath("cli_smoke_trace.json");

  CpganConfig config;
  config.epochs = kEpochs;
  config.subgraph_size = 40;
  config.hidden_dim = 8;
  config.latent_dim = 4;
  config.feature_dim = 4;
  config.seed = 17;
  config.metrics_out = metrics_path;
  config.profile = true;
  config.trace_out = trace_path;

  Cpgan model(config);
  TrainStats stats = model.Fit(TinyGraph());
  EXPECT_EQ(stats.metrics_records, kEpochs);

  // One parseable JSONL record per epoch, epochs in order.
  std::string text;
  ASSERT_TRUE(util::ReadFileToString(metrics_path, &text));
  std::vector<std::string> lines = util::Split(text, "\n");
  ASSERT_EQ(static_cast<int>(lines.size()), kEpochs);
  for (int i = 0; i < kEpochs; ++i) {
    obs::JsonValue parsed;
    std::string error;
    ASSERT_TRUE(obs::JsonValue::Parse(lines[i], &parsed, &error))
        << "line " << i << ": " << error;
    obs::EpochRecord record;
    ASSERT_TRUE(obs::EpochRecordFromJson(parsed, &record)) << "line " << i;
    EXPECT_EQ(record.epoch, i);
    EXPECT_GE(record.epoch_ms, 0.0);
    EXPECT_GT(record.threads, 0);
    EXPECT_GE(record.peak_bytes, record.encoder_peak_bytes);
  }

  // The Chrome trace parses and contains the training phase spans.
  std::string trace_text;
  ASSERT_TRUE(util::ReadFileToString(trace_path, &trace_text));
  obs::JsonValue trace;
  std::string trace_error;
  ASSERT_TRUE(obs::JsonValue::Parse(trace_text, &trace, &trace_error))
      << trace_error;
  const obs::JsonValue* events = trace.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  bool saw_epoch = false;
  for (const obs::JsonValue& event : events->items()) {
    const obs::JsonValue* name = event.Find("name");
    if (name != nullptr && name->string_value() == "train/epoch") {
      saw_epoch = true;
    }
  }
  EXPECT_TRUE(saw_epoch);

  // Fit() restores the global tracing switches on the way out.
  EXPECT_FALSE(obs::TracingEnabled());
  EXPECT_FALSE(obs::TraceEventsEnabled());

  std::remove(metrics_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(CliSmokeTest, ObservabilityOffWritesNothing) {
  CpganConfig config;
  config.epochs = 2;
  config.subgraph_size = 40;
  config.hidden_dim = 8;
  config.latent_dim = 4;
  config.feature_dim = 4;
  config.seed = 17;
  Cpgan model(config);
  TrainStats stats = model.Fit(TinyGraph());
  EXPECT_EQ(stats.metrics_records, 0);
}

}  // namespace
}  // namespace cpgan::core
