// Exporter + registry-surface tests: histogram snapshot deltas and
// quantiles, VisitAll's lock discipline, metric-name hygiene at
// registration, Prometheus exposition validity, exporter lifecycle
// (start/stop/flush-on-shutdown), and JSONL integrity under concurrent
// writers. Runs under ASan/TSan via the sanitizer builds (docs/TESTING.md).

#include "obs/exporter.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/fileio.h"

namespace cpgan::obs {
namespace {

std::vector<std::string> ReadLines(const std::string& path) {
  std::string text;
  EXPECT_TRUE(util::ReadFileToString(path, &text)) << path;
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

TEST(HistogramSnapshotTest, DeltaSinceSubtractsPerField) {
  Histogram histogram;
  histogram.Observe(10);
  histogram.Observe(100);
  HistogramSnapshot first = histogram.Snapshot();
  histogram.Observe(1000);
  HistogramSnapshot second = histogram.Snapshot();

  HistogramSnapshot delta = second.DeltaSince(first);
  EXPECT_EQ(delta.count, 1u);
  EXPECT_EQ(delta.sum, 1000u);
  EXPECT_EQ(delta.buckets[Histogram::BucketFor(1000)], 1u);
  EXPECT_EQ(delta.buckets[Histogram::BucketFor(10)], 0u);

  // A Reset between snapshots saturates to zero instead of wrapping.
  histogram.Reset();
  HistogramSnapshot after_reset = histogram.Snapshot();
  HistogramSnapshot wrapped = after_reset.DeltaSince(second);
  EXPECT_EQ(wrapped.count, 0u);
  EXPECT_EQ(wrapped.sum, 0u);
}

TEST(HistogramSnapshotTest, QuantileInterpolatesWithinBucket) {
  HistogramSnapshot snapshot;
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.5), 0.0);  // empty

  Histogram histogram;
  for (int i = 0; i < 100; ++i) histogram.Observe(100);  // bucket [64,128)
  snapshot = histogram.Snapshot();
  double p50 = snapshot.Quantile(0.5);
  EXPECT_GE(p50, 64.0);
  EXPECT_LE(p50, 128.0);
  // p99 cannot be below p50 by construction.
  EXPECT_GE(snapshot.Quantile(0.99), p50);
}

TEST(HistogramSnapshotTest, AccumulateMergesCounts) {
  Histogram a, b;
  a.Observe(5);
  b.Observe(500);
  HistogramSnapshot merged = a.Snapshot();
  merged.Accumulate(b.Snapshot());
  EXPECT_EQ(merged.count, 2u);
  EXPECT_EQ(merged.sum, 505u);
}

TEST(RegistrySurfaceTest, VisitAllSeesEveryKindAndAllowsFindReentry) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.FindCounter("test/visit_counter")->Increment(3);
  registry.FindGauge("test/visit_gauge")->Set(1.0);
  registry.FindHistogram("test/visit_hist")->Observe(8);
  registry.FindStopwatch("test/visit_sw")->AddNanos(10);

  std::set<std::string> seen;
  registry.VisitAll([&](const InstrumentRef& ref) {
    seen.insert(*ref.name);
    // Re-entering the registry from a visitor must not deadlock: the lock
    // is only held to copy the index, not during visitation.
    registry.FindCounter("test/visit_counter");
  });
  EXPECT_TRUE(seen.count("test/visit_counter"));
  EXPECT_TRUE(seen.count("test/visit_gauge"));
  EXPECT_TRUE(seen.count("test/visit_hist"));
  EXPECT_TRUE(seen.count("test/visit_sw"));
}

TEST(RegistrySurfaceTest, NameHygienePinnedAtRegistration) {
  EXPECT_TRUE(IsValidMetricName("serve.latency_ns"));
  EXPECT_TRUE(IsValidMetricName("a/b:c-d_e.f"));
  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("has space"));
  EXPECT_FALSE(IsValidMetricName("1starts_with_digit"));
  EXPECT_FALSE(IsValidMetricName("quote\"inside"));

  EXPECT_EQ(SanitizeMetricName("has space"), "has_space");
  EXPECT_EQ(SanitizeMetricName("1x"), "_1x");
  EXPECT_EQ(SanitizeMetricName(""), "_unnamed");
  EXPECT_EQ(SanitizeMetricName("quote\"in\nside"), "quote_in_side");

  // Registration sanitizes: a hostile spelling lands under its canonical
  // name, and two spellings that sanitize identically share an instrument.
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* hostile = registry.FindCounter("bad name\"x");
  Counter* canonical = registry.FindCounter("bad_name_x");
  EXPECT_EQ(hostile, canonical);
}

/// Every exposition line must be a comment or `name{labels} value` with the
/// name in the Prometheus charset — the renderer contract the name-hygiene
/// satellite pins.
void ExpectValidPrometheus(const std::string& text) {
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "unterminated final line";
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE ", 0), 0u) << line;
      continue;
    }
    size_t name_end = line.find_first_of(" {");
    ASSERT_NE(name_end, std::string::npos) << line;
    std::string name = line.substr(0, name_end);
    ASSERT_FALSE(name.empty()) << line;
    EXPECT_FALSE(std::isdigit(static_cast<unsigned char>(name[0]))) << line;
    for (char c : name) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                  c == ':')
          << "invalid char '" << c << "' in " << line;
    }
    // Value parses as a double and nothing trails it.
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    char* parse_end = nullptr;
    std::string value = line.substr(space + 1);
    std::strtod(value.c_str(), &parse_end);
    EXPECT_EQ(*parse_end, '\0') << line;
  }
}

TEST(PrometheusRenderTest, RendersEveryKindValidly) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.FindCounter("test/prom.counter-x")->Increment(2);
  registry.FindGauge("test/prom_gauge")->Set(0.5);
  registry.FindHistogram("test/prom_hist")->Observe(100);
  registry.FindHistogram("test/prom_hist")->Observe(100000);
  registry.FindStopwatch("test/prom_sw")->AddNanos(2000000);
  registry.FindCounter("prom bad\"name");  // sanitized at registration

  std::string text = RenderPrometheus(registry.SnapshotAll());
  ExpectValidPrometheus(text);
  EXPECT_NE(text.find("test_prom_counter_x_total 2"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"+Inf\"} "),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_count 2"), std::string::npos);
  EXPECT_NE(text.find("test_prom_sw_seconds_total "), std::string::npos);
  EXPECT_NE(text.find("prom_bad_name_total "), std::string::npos);

  // Cumulative buckets are monotone non-decreasing per histogram.
  uint64_t last = 0;
  size_t pos = 0;
  const std::string needle = "test_prom_hist_bucket{le=\"";
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    size_t value_at = text.find("} ", pos);
    ASSERT_NE(value_at, std::string::npos);
    uint64_t v = std::strtoull(text.c_str() + value_at + 2, nullptr, 10);
    EXPECT_GE(v, last);
    last = v;
    pos = value_at;
  }
  EXPECT_EQ(last, 2u);  // +Inf bucket carries the full count
}

TEST(ExporterTest, LifecycleAndFlushOnShutdown) {
  const std::string prom = ::testing::TempDir() + "/exporter_life.prom";
  const std::string jsonl = ::testing::TempDir() + "/exporter_life.jsonl";
  std::remove(prom.c_str());
  std::remove(jsonl.c_str());

  MetricsRegistry::Global().FindCounter("test/exporter_life")->Reset();

  int ticks = 0;
  ExporterOptions options;
  options.period_ms = 3600 * 1000.0;  // never fires on its own
  options.prometheus_path = prom;
  options.jsonl_path = jsonl;
  options.on_tick = [&ticks] { ++ticks; };

  MetricsExporter exporter(options);
  EXPECT_FALSE(exporter.running());
  exporter.Start();
  EXPECT_TRUE(exporter.running());
  exporter.Start();  // idempotent

  MetricsRegistry::Global().FindCounter("test/exporter_life")->Increment(5);
  exporter.Stop();  // must flush the partial period
  EXPECT_FALSE(exporter.running());
  exporter.Stop();  // idempotent

  EXPECT_GE(exporter.snapshots_written(), 1);
  EXPECT_GE(ticks, 1);

  std::string prom_text;
  ASSERT_TRUE(util::ReadFileToString(prom, &prom_text));
  ExpectValidPrometheus(prom_text);
  EXPECT_NE(prom_text.find("test_exporter_life_total 5"), std::string::npos);

  std::vector<std::string> lines = ReadLines(jsonl);
  ASSERT_GE(lines.size(), 1u);
  JsonValue snapshot;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(lines.back(), &snapshot, &error)) << error;
  const JsonValue* counters = snapshot.Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* entry = counters->Find("test/exporter_life");
  ASSERT_NE(entry, nullptr);
  EXPECT_DOUBLE_EQ(entry->NumberOr("total", -1.0), 5.0);
}

TEST(ExporterTest, JsonlCarriesTrueDeltas) {
  const std::string jsonl = ::testing::TempDir() + "/exporter_delta.jsonl";
  std::remove(jsonl.c_str());

  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.FindCounter("test/exporter_delta")->Reset();
  registry.FindHistogram("test/exporter_delta_hist")->Reset();

  ExporterOptions options;
  options.jsonl_path = jsonl;
  MetricsExporter exporter(options);  // never started: Flush drives it

  registry.FindCounter("test/exporter_delta")->Increment(10);
  registry.FindHistogram("test/exporter_delta_hist")->Observe(100);
  ASSERT_TRUE(exporter.Flush());
  registry.FindCounter("test/exporter_delta")->Increment(7);
  registry.FindHistogram("test/exporter_delta_hist")->Observe(100);
  registry.FindHistogram("test/exporter_delta_hist")->Observe(100);
  ASSERT_TRUE(exporter.Flush());

  std::vector<std::string> lines = ReadLines(jsonl);
  ASSERT_EQ(lines.size(), 2u);
  JsonValue second;
  ASSERT_TRUE(JsonValue::Parse(lines[1], &second, nullptr));
  EXPECT_DOUBLE_EQ(second.NumberOr("seq", -1.0), 1.0);
  const JsonValue* counter = second.Find("counters")
                                 ->Find("test/exporter_delta");
  ASSERT_NE(counter, nullptr);
  EXPECT_DOUBLE_EQ(counter->NumberOr("total", -1.0), 17.0);
  EXPECT_DOUBLE_EQ(counter->NumberOr("delta", -1.0), 7.0);
  const JsonValue* hist = second.Find("histograms")
                              ->Find("test/exporter_delta_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->NumberOr("count", -1.0), 3.0);
  EXPECT_DOUBLE_EQ(hist->NumberOr("delta_count", -1.0), 2.0);
}

TEST(ExporterTest, NoTornJsonlLinesUnderConcurrentWriters) {
  const std::string jsonl = ::testing::TempDir() + "/exporter_torn.jsonl";
  std::remove(jsonl.c_str());

  ExporterOptions options;
  options.period_ms = 1.0;  // background thread races the Flush callers
  options.jsonl_path = jsonl;
  MetricsExporter exporter(options);
  exporter.Start();

  Counter* counter =
      MetricsRegistry::Global().FindCounter("test/exporter_torn");
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&exporter, counter] {
      for (int i = 0; i < 20; ++i) {
        counter->Increment();
        exporter.Flush();
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  exporter.Stop();

  // Every line parses as a complete snapshot object and sequence numbers
  // are strictly increasing — concurrent writers never interleave bytes.
  std::vector<std::string> lines = ReadLines(jsonl);
  ASSERT_GE(lines.size(), 80u);
  double last_seq = -1.0;
  for (const std::string& line : lines) {
    JsonValue snapshot;
    std::string error;
    ASSERT_TRUE(JsonValue::Parse(line, &snapshot, &error))
        << error << " in: " << line;
    double seq = snapshot.NumberOr("seq", -1.0);
    EXPECT_GT(seq, last_seq);
    last_seq = seq;
    EXPECT_EQ(snapshot.Find("kind")->string_value(), "metrics_snapshot");
  }
}

TEST(ExporterTest, StartWithoutSinksIsANoOp) {
  ExporterOptions options;  // both paths empty
  MetricsExporter exporter(options);
  exporter.Start();
  EXPECT_FALSE(exporter.running());
  exporter.Stop();
}

}  // namespace
}  // namespace cpgan::obs
