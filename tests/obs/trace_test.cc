// Unit tests for scoped trace spans: nesting, call counts, the
// inclusive/exclusive-time invariants, merging across thread-pool workers,
// the rendered profile, and Chrome trace-event export.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "obs/json.h"
#include "util/fileio.h"
#include "util/thread_pool.h"

namespace cpgan::obs {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

/// Enables span collection for one test body and restores the previous
/// state afterwards (tests share one process).
class TracingOn {
 public:
  TracingOn() : prior_(TracingEnabled()), prior_events_(TraceEventsEnabled()) {
    ResetTraces();
    SetTracingEnabled(true);
  }
  ~TracingOn() {
    SetTracingEnabled(prior_);
    SetTraceEventsEnabled(prior_events_);
  }

 private:
  bool prior_;
  bool prior_events_;
};

const SpanStats* FindPath(const std::vector<SpanStats>& stats,
                          const std::string& path) {
  for (const SpanStats& span : stats) {
    if (span.path == path) return &span;
  }
  return nullptr;
}

void Workload() {
  volatile double sink = 0.0;
  for (int i = 0; i < 1000; ++i) sink += static_cast<double>(i) * 0.5;
}

TEST(TraceTest, NestedSpansBuildCallTree) {
  TracingOn tracing;
  for (int i = 0; i < 3; ++i) {
    CPGAN_TRACE_SPAN("test/outer");
    Workload();
    for (int j = 0; j < 2; ++j) {
      CPGAN_TRACE_SPAN("test/inner");
      Workload();
    }
  }
  std::vector<SpanStats> stats = CollectSpanStats();
  const SpanStats* outer = FindPath(stats, "test/outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->calls, 3u);
  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(outer->name, "test/outer");
  const SpanStats* inner = FindPath(stats, "test/outer;test/inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->calls, 6u);
  EXPECT_EQ(inner->depth, 1);
  // A nested child's inclusive time is bounded by its parent's.
  EXPECT_LE(inner->inclusive_ns, outer->inclusive_ns);
  // exclusive = inclusive - direct children.
  EXPECT_EQ(outer->exclusive_ns, outer->inclusive_ns - inner->inclusive_ns);
}

TEST(TraceTest, ExclusiveTimesSumToTopLevelInclusive) {
  TracingOn tracing;
  {
    CPGAN_TRACE_SPAN("test/root");
    Workload();
    {
      CPGAN_TRACE_SPAN("test/a");
      Workload();
      CPGAN_TRACE_SPAN("test/a_leaf");
      Workload();
    }
    CPGAN_TRACE_SPAN("test/b");
    Workload();
  }
  std::vector<SpanStats> stats = CollectSpanStats();
  uint64_t exclusive_total = 0;
  uint64_t top_level_inclusive = 0;
  for (const SpanStats& span : stats) {
    exclusive_total += span.exclusive_ns;
    if (span.depth == 0) top_level_inclusive += span.inclusive_ns;
  }
  // The tree partitions the root's wall time: summed exclusive time equals
  // summed top-level inclusive time exactly (same clock, no clamping).
  EXPECT_EQ(exclusive_total, top_level_inclusive);
}

TEST(TraceTest, DisabledTracingRecordsNothing) {
  ResetTraces();
  ASSERT_FALSE(TracingEnabled()) << "tracing should default to disabled";
  {
    CPGAN_TRACE_SPAN("test/should_not_appear");
    Workload();
  }
  EXPECT_TRUE(CollectSpanStats().empty());
}

TEST(TraceTest, SpansInsideThreadPoolWorkersMergeByPath) {
  TracingOn tracing;
  util::ThreadPool pool(4);
  const int64_t n = 64;
  {
    CPGAN_TRACE_SPAN("test/region");
    pool.ParallelFor(0, n, 1, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        CPGAN_TRACE_SPAN("test/chunk");
        Workload();
      }
    });
  }
  std::vector<SpanStats> stats = CollectSpanStats();
  // Worker threads record "test/chunk" as a top-level span in their own
  // trees; the caller's chunks nest under "test/region". Total calls across
  // both paths must cover every chunk exactly once.
  uint64_t chunk_calls = 0;
  for (const SpanStats& span : stats) {
    if (span.name == "test/chunk") chunk_calls += span.calls;
  }
  EXPECT_EQ(chunk_calls, static_cast<uint64_t>(n));
}

TEST(TraceTest, ResetTracesClearsStats) {
  TracingOn tracing;
  {
    CPGAN_TRACE_SPAN("test/reset_me");
    Workload();
  }
  EXPECT_FALSE(CollectSpanStats().empty());
  ResetTraces();
  EXPECT_TRUE(CollectSpanStats().empty());
}

TEST(TraceTest, RenderProfileListsSpans) {
  TracingOn tracing;
  {
    CPGAN_TRACE_SPAN("test/profiled");
    Workload();
    CPGAN_TRACE_SPAN("test/profiled_child");
    Workload();
  }
  std::string profile = RenderProfile();
  EXPECT_NE(profile.find("test/profiled"), std::string::npos);
  EXPECT_NE(profile.find("test/profiled_child"), std::string::npos);
  EXPECT_NE(profile.find("calls"), std::string::npos);
}

TEST(TraceTest, WriteChromeTraceEmitsParseableEvents) {
  TracingOn tracing;
  SetTraceEventsEnabled(true);
  {
    CPGAN_TRACE_SPAN("test/chrome_outer");
    Workload();
    CPGAN_TRACE_SPAN("test/chrome_inner");
    Workload();
  }
  std::string path = TempPath("trace_test.json");
  ASSERT_TRUE(WriteChromeTrace(path));

  std::string text;
  ASSERT_TRUE(util::ReadFileToString(path, &text));
  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(text, &parsed, &error)) << error;
  const JsonValue* events = parsed.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GE(events->items().size(), 2u);
  bool saw_inner = false;
  for (const JsonValue& event : events->items()) {
    const JsonValue* name = event.Find("name");
    ASSERT_NE(name, nullptr);
    const JsonValue* phase = event.Find("ph");
    ASSERT_NE(phase, nullptr);
    EXPECT_EQ(phase->string_value(), "X");
    EXPECT_NE(event.Find("ts"), nullptr);
    EXPECT_NE(event.Find("dur"), nullptr);
    EXPECT_NE(event.Find("tid"), nullptr);
    if (name->string_value() == "test/chrome_inner") saw_inner = true;
  }
  EXPECT_TRUE(saw_inner);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cpgan::obs
