// SloTracker tests with deterministic time (ObserveAt/SnapshotAt): window
// percentiles, availability and burn-rate math, slot expiry as the window
// slides, gauge publication, and degenerate configs.

#include "obs/slo.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace cpgan::obs {
namespace {

constexpr uint64_t kSecond = 1000000000ull;
constexpr uint64_t kMs = 1000000ull;

SloConfig TestConfig() {
  SloConfig config;
  config.latency_target_ms = 50.0;
  config.latency_objective = 0.9;        // 10% latency budget
  config.availability_objective = 0.95;  // 5% availability budget
  config.window_s = 12.0;
  config.slots = 12;  // 1 s per slot
  return config;
}

TEST(SloTrackerTest, EmptyWindowIsHealthy) {
  SloTracker tracker(TestConfig());
  SloSnapshot snap = tracker.SnapshotAt(kSecond);
  EXPECT_EQ(snap.total, 0u);
  EXPECT_DOUBLE_EQ(snap.availability, 1.0);
  EXPECT_DOUBLE_EQ(snap.availability_burn_rate, 0.0);
  EXPECT_DOUBLE_EQ(snap.latency_burn_rate, 0.0);
  EXPECT_DOUBLE_EQ(snap.p99_ms, 0.0);
}

TEST(SloTrackerTest, PercentilesFromWindow) {
  SloTracker tracker(TestConfig());
  uint64_t now = 100 * kSecond;
  // 90 fast requests (~4 ms), 10 slow (~400 ms).
  for (int i = 0; i < 90; ++i) tracker.ObserveAt(now, 4 * kMs, true);
  for (int i = 0; i < 10; ++i) tracker.ObserveAt(now, 400 * kMs, true);

  SloSnapshot snap = tracker.SnapshotAt(now);
  EXPECT_EQ(snap.total, 100u);
  EXPECT_LT(snap.p50_ms, 10.0);
  EXPECT_GT(snap.p95_ms, 50.0);   // lands among the slow requests
  EXPECT_GT(snap.p99_ms, 200.0);
  EXPECT_GE(snap.p99_ms, snap.p95_ms);
  EXPECT_GE(snap.p95_ms, snap.p50_ms);
}

TEST(SloTrackerTest, BurnRatesAgainstBudgets) {
  SloTracker tracker(TestConfig());
  uint64_t now = 50 * kSecond;
  // 5% errors on a 5% budget -> availability burn rate 1.0.
  // 20% slow (>50ms) on a 10% budget -> latency burn rate 2.0.
  for (int i = 0; i < 75; ++i) tracker.ObserveAt(now, 10 * kMs, true);
  for (int i = 0; i < 20; ++i) tracker.ObserveAt(now, 80 * kMs, true);
  for (int i = 0; i < 5; ++i) tracker.ObserveAt(now, 10 * kMs, false);

  SloSnapshot snap = tracker.SnapshotAt(now);
  EXPECT_EQ(snap.total, 100u);
  EXPECT_EQ(snap.errors, 5u);
  EXPECT_EQ(snap.slow, 20u);
  EXPECT_DOUBLE_EQ(snap.availability, 0.95);
  EXPECT_DOUBLE_EQ(snap.latency_compliance, 0.80);
  EXPECT_NEAR(snap.availability_burn_rate, 1.0, 1e-9);
  EXPECT_NEAR(snap.latency_burn_rate, 2.0, 1e-9);
}

TEST(SloTrackerTest, OldSlotsExpireAsWindowSlides) {
  SloTracker tracker(TestConfig());
  uint64_t start = 200 * kSecond;
  for (int i = 0; i < 10; ++i) tracker.ObserveAt(start, 10 * kMs, false);
  EXPECT_EQ(tracker.SnapshotAt(start).total, 10u);

  // Still inside the 12 s window.
  uint64_t later = start + 6 * kSecond;
  tracker.ObserveAt(later, 10 * kMs, true);
  SloSnapshot mid = tracker.SnapshotAt(later);
  EXPECT_EQ(mid.total, 11u);
  EXPECT_EQ(mid.errors, 10u);

  // Far past the window: the old errors no longer burn budget. (Snapshot
  // alone must filter stale slots even though only Observe rotates them.)
  uint64_t after = start + 60 * kSecond;
  SloSnapshot expired = tracker.SnapshotAt(after);
  EXPECT_EQ(expired.total, 0u);
  EXPECT_DOUBLE_EQ(expired.availability, 1.0);

  // New observations after the gap clear the stale ring slots.
  tracker.ObserveAt(after, 10 * kMs, true);
  SloSnapshot fresh = tracker.SnapshotAt(after);
  EXPECT_EQ(fresh.total, 1u);
  EXPECT_EQ(fresh.errors, 0u);
}

TEST(SloTrackerTest, ZeroBudgetObjectiveClampsBurnRate) {
  SloConfig config = TestConfig();
  config.availability_objective = 1.0;  // no error budget at all
  SloTracker tracker(config);
  uint64_t now = 10 * kSecond;
  tracker.ObserveAt(now, kMs, false);
  SloSnapshot snap = tracker.SnapshotAt(now);
  EXPECT_GT(snap.availability_burn_rate, 1000.0);  // clamped sentinel, finite
  EXPECT_LT(snap.availability_burn_rate, 1e9);
}

TEST(SloTrackerTest, PublishGaugesLandsInRegistry) {
  SloTracker tracker(TestConfig());
  for (int i = 0; i < 10; ++i) tracker.Observe(4 * kMs, true);
  tracker.PublishGauges("test.slo");
  MetricsRegistry& registry = MetricsRegistry::Global();
  EXPECT_DOUBLE_EQ(registry.FindGauge("test.slo.window_total")->Value(),
                   10.0);
  EXPECT_DOUBLE_EQ(registry.FindGauge("test.slo.availability")->Value(), 1.0);
  EXPECT_GT(registry.FindGauge("test.slo.p99_ms")->Value(), 0.0);
}

TEST(SloTrackerTest, DegenerateConfigIsUsable) {
  SloConfig config;
  config.slots = 0;       // clamped to 1
  config.window_s = -5.0; // clamped to 1 s
  SloTracker tracker(config);
  tracker.ObserveAt(kSecond, kMs, true);
  EXPECT_EQ(tracker.SnapshotAt(kSecond).total, 1u);
}

}  // namespace
}  // namespace cpgan::obs
