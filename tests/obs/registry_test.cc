// Unit tests for the metrics registry: concurrent instrument updates,
// histogram bucketing, find-or-create pointer stability, reset semantics,
// the JSON snapshot, and the disabled fast path of the update macros.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "util/thread_pool.h"

namespace cpgan::obs {
namespace {

TEST(RegistryTest, CounterConcurrentIncrementsSumExactly) {
  Counter* counter =
      MetricsRegistry::Global().FindCounter("test/registry_concurrent");
  counter->Reset();
  const int64_t n = 100000;
  util::ThreadPool pool(4);
  pool.ParallelFor(0, n, 64, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) counter->Increment();
  });
  EXPECT_EQ(counter->Value(), static_cast<uint64_t>(n));
}

TEST(RegistryTest, CounterConcurrentFromRawThreads) {
  Counter counter;
  std::vector<std::thread> threads;
  const int kThreads = 8;
  const int kPerThread = 20000;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&counter] {
      for (int j = 0; j < kPerThread; ++j) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(RegistryTest, HistogramBucketBoundaries) {
  // bucket 0 = {0}; bucket i >= 1 = [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketFor(0), 0);
  EXPECT_EQ(Histogram::BucketFor(1), 1);
  EXPECT_EQ(Histogram::BucketFor(2), 2);
  EXPECT_EQ(Histogram::BucketFor(3), 2);
  EXPECT_EQ(Histogram::BucketFor(4), 3);
  EXPECT_EQ(Histogram::BucketFor(7), 3);
  EXPECT_EQ(Histogram::BucketFor(8), 4);
  EXPECT_EQ(Histogram::BucketFor(1023), 10);
  EXPECT_EQ(Histogram::BucketFor(1024), 11);
  // The top bucket absorbs everything out of range.
  EXPECT_EQ(Histogram::BucketFor(~uint64_t{0}), Histogram::kNumBuckets - 1);
  // Lower bounds invert BucketFor at bucket starts.
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::BucketLowerBound(11), 1024u);
}

TEST(RegistryTest, HistogramObserveCountsAndSums) {
  Histogram histogram;
  histogram.Observe(0);
  histogram.Observe(1);
  histogram.Observe(3);
  histogram.Observe(3);
  EXPECT_EQ(histogram.Count(), 4u);
  EXPECT_EQ(histogram.Sum(), 7u);
  EXPECT_EQ(histogram.BucketCount(0), 1u);
  EXPECT_EQ(histogram.BucketCount(1), 1u);
  EXPECT_EQ(histogram.BucketCount(2), 2u);
  histogram.Reset();
  EXPECT_EQ(histogram.Count(), 0u);
  EXPECT_EQ(histogram.BucketCount(2), 0u);
}

TEST(RegistryTest, GaugeSetAndSetMax) {
  Gauge gauge;
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 2.5);
  gauge.SetMax(1.0);  // smaller: no change
  EXPECT_DOUBLE_EQ(gauge.Value(), 2.5);
  gauge.SetMax(9.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), 9.0);
}

TEST(RegistryTest, StopwatchScopeAccumulates) {
  Stopwatch stopwatch;
  {
    Stopwatch::Scope scope(&stopwatch);
  }
  {
    Stopwatch::Scope scope(&stopwatch);
  }
  EXPECT_EQ(stopwatch.Count(), 2u);
  // Null stopwatch scopes are no-ops (the disabled path).
  { Stopwatch::Scope scope(nullptr); }
}

TEST(RegistryTest, FindOrCreateReturnsStablePointers) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* first = registry.FindCounter("test/registry_stable");
  Counter* second = registry.FindCounter("test/registry_stable");
  EXPECT_EQ(first, second);
  // Distinct kinds with the same name are distinct instruments.
  EXPECT_NE(static_cast<void*>(registry.FindGauge("test/registry_stable")),
            static_cast<void*>(first));
  // ResetAll zeroes values but keeps pointers valid.
  first->Increment(5);
  registry.ResetAll();
  EXPECT_EQ(first->Value(), 0u);
  EXPECT_EQ(registry.FindCounter("test/registry_stable"), first);
}

TEST(RegistryTest, SnapshotAndJsonRoundTrip) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.FindCounter("test/registry_json")->Reset();
  registry.FindCounter("test/registry_json")->Increment(7);
  registry.FindGauge("test/registry_json_gauge")->Set(1.5);

  bool found = false;
  for (const MetricSample& sample : registry.Snapshot()) {
    if (sample.name == "test/registry_json" &&
        sample.kind == MetricSample::Kind::kCounter) {
      EXPECT_DOUBLE_EQ(sample.value, 7.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);

  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(registry.RenderJson(), &parsed, &error))
      << error;
  const JsonValue* counters = parsed.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->NumberOr("test/registry_json", -1.0), 7.0);
  const JsonValue* gauges = parsed.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->NumberOr("test/registry_json_gauge", -1.0), 1.5);
}

TEST(RegistryTest, MacrosAreNoOpsWhenDisabled) {
  Counter* counter =
      MetricsRegistry::Global().FindCounter("test/registry_disabled");
  counter->Reset();
  ASSERT_TRUE(MetricsEnabled()) << "metrics should default to enabled";
  SetMetricsEnabled(false);
  CPGAN_COUNTER_ADD("test/registry_disabled", 1);
  CPGAN_GAUGE_SET("test/registry_disabled_gauge", 3.0);
  CPGAN_HISTOGRAM_OBSERVE("test/registry_disabled_hist", 3);
  { CPGAN_STOPWATCH_SCOPE("test/registry_disabled_sw"); }
  SetMetricsEnabled(true);
  EXPECT_EQ(counter->Value(), 0u);
  CPGAN_COUNTER_ADD("test/registry_disabled", 2);
  EXPECT_EQ(counter->Value(), 2u);
}

}  // namespace
}  // namespace cpgan::obs
