// Request-scoped trace propagation: ScopedRequestContext install/restore
// and nesting, deadline queries, capture-at-post propagation through
// ThreadPool parallel regions, request-id stamping on Chrome trace events,
// and the per-request pid grouping of WriteChromeTrace.

#include "obs/request_context.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>

#include "obs/json.h"
#include "obs/trace.h"
#include "util/fileio.h"
#include "util/thread_pool.h"

namespace cpgan::obs {
namespace {

uint64_t SteadyNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TEST(RequestContextTest, ScopedInstallAndNestedRestore) {
  EXPECT_EQ(CurrentRequestId(), 0u);
  EXPECT_FALSE(CurrentRequestContext().active());
  {
    RequestContext outer;
    outer.id = 7;
    ScopedRequestContext outer_scope(outer);
    EXPECT_EQ(CurrentRequestId(), 7u);
    {
      RequestContext inner;
      inner.id = 9;
      ScopedRequestContext inner_scope(inner);
      EXPECT_EQ(CurrentRequestId(), 9u);
    }
    EXPECT_EQ(CurrentRequestId(), 7u);
  }
  EXPECT_EQ(CurrentRequestId(), 0u);
}

TEST(RequestContextTest, DeadlineExpiryQueries) {
  EXPECT_FALSE(CurrentRequestDeadlineExpired());  // no context
  RequestContext unbounded;
  unbounded.id = 1;  // deadline_ns stays 0
  {
    ScopedRequestContext scope(unbounded);
    EXPECT_FALSE(CurrentRequestDeadlineExpired());
  }
  RequestContext expired;
  expired.id = 2;
  expired.deadline_ns = 1;  // far in the steady clock's past
  {
    ScopedRequestContext scope(expired);
    EXPECT_TRUE(CurrentRequestDeadlineExpired());
  }
  RequestContext future;
  future.id = 3;
  future.deadline_ns = SteadyNowNanos() + 60ull * 1000000000ull;
  {
    ScopedRequestContext scope(future);
    EXPECT_FALSE(CurrentRequestDeadlineExpired());
  }
}

TEST(RequestContextTest, PropagatesThroughParallelFor) {
  util::ThreadPool pool(4);
  RequestContext context;
  context.id = 42;
  std::atomic<int> chunks_with_context{0};
  std::atomic<int> chunks_total{0};
  {
    ScopedRequestContext scope(context);
    pool.ParallelFor(0, 64, 1, [&](int64_t, int64_t) {
      chunks_total.fetch_add(1);
      if (CurrentRequestId() == 42) chunks_with_context.fetch_add(1);
    });
  }
  EXPECT_EQ(chunks_total.load(), 64);
  // Every chunk — whichever worker claimed it — saw the posting thread's
  // context.
  EXPECT_EQ(chunks_with_context.load(), 64);

  // After the region, neither the caller nor the workers keep the context.
  EXPECT_EQ(CurrentRequestId(), 0u);
  std::atomic<int> leaked{0};
  pool.ParallelFor(0, 64, 1, [&](int64_t, int64_t) {
    if (CurrentRequestId() != 0) leaked.fetch_add(1);
  });
  EXPECT_EQ(leaked.load(), 0);
}

TEST(RequestContextTest, ChromeTraceGroupsSpansByRequest) {
  const std::string path =
      ::testing::TempDir() + "/request_trace_chrome.json";
  util::ThreadPool pool(4);

  ResetTraces();
  SetTracingEnabled(true);
  SetTraceEventsEnabled(true);
  for (uint64_t request_id : {11ull, 12ull}) {
    RequestContext context;
    context.id = request_id;
    ScopedRequestContext scope(context);
    CPGAN_TRACE_SPAN("test/request_root");
    pool.ParallelFor(0, 8, 1, [&](int64_t, int64_t) {
      CPGAN_TRACE_SPAN("test/request_chunk");
    });
  }
  { CPGAN_TRACE_SPAN("test/no_request"); }  // pid 1 lane
  SetTraceEventsEnabled(false);
  SetTracingEnabled(false);

  ASSERT_TRUE(WriteChromeTrace(path));
  std::string text;
  ASSERT_TRUE(util::ReadFileToString(path, &text));
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(text, &doc, &error)) << error;
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::set<double> request_pids;
  std::set<std::string> lane_names;
  bool saw_process_lane = false;
  int chunk_events = 0;
  for (const JsonValue& event : events->items()) {
    const std::string ph = event.Find("ph")->string_value();
    if (ph == "M") {
      // process_name metadata names the per-request lanes.
      EXPECT_EQ(event.Find("name")->string_value(), "process_name");
      lane_names.insert(
          event.Find("args")->Find("name")->string_value());
      continue;
    }
    ASSERT_EQ(ph, "X");
    const double pid = event.NumberOr("pid", -1.0);
    const std::string name = event.Find("name")->string_value();
    if (name == "test/no_request") {
      EXPECT_EQ(pid, 1.0);  // non-request spans stay on the process lane
      saw_process_lane = true;
      continue;
    }
    if (name == "test/request_chunk") ++chunk_events;
    if (pid > 1.0) {
      request_pids.insert(pid);
      // pid encodes request id + 1; args carry the raw id.
      EXPECT_DOUBLE_EQ(
          event.Find("args")->NumberOr("request_id", -1.0) + 1.0, pid);
    }
  }
  EXPECT_TRUE(saw_process_lane);
  EXPECT_EQ(request_pids.size(), 2u);      // one lane per request
  EXPECT_EQ(request_pids.count(12.0), 1u); // request 11 -> pid 12
  EXPECT_EQ(request_pids.count(13.0), 1u);
  EXPECT_EQ(chunk_events, 16);             // 8 chunks per request, stamped
  EXPECT_EQ(lane_names.count("request 11"), 1u);
  EXPECT_EQ(lane_names.count("request 12"), 1u);

  ResetTraces();
}

}  // namespace
}  // namespace cpgan::obs
