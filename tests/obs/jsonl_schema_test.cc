// Round-trip tests for the JSON document model and the run-log JSONL
// schema (docs/OBSERVABILITY.md). This suite is also the CI schema check:
// it validates every required field of a written run log in C++ with no
// Python dependency.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/run_logger.h"
#include "util/fileio.h"
#include "util/string_util.h"

namespace cpgan::obs {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(JsonTest, SerializeParseRoundTrip) {
  JsonValue object = JsonValue::Object();
  object.Add("int", JsonValue::Int(42));
  object.Add("neg", JsonValue::Number(-2.5));
  object.Add("text", JsonValue::String("line\nbreak \"quoted\" back\\slash"));
  object.Add("flag", JsonValue::Bool(true));
  object.Add("missing", JsonValue::Null());
  JsonValue nested = JsonValue::Array();
  nested.Append(JsonValue::Int(1));
  nested.Append(JsonValue::String("two"));
  object.Add("items", nested);

  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(object.Serialize(), &parsed, &error)) << error;
  EXPECT_DOUBLE_EQ(parsed.NumberOr("int", 0.0), 42.0);
  EXPECT_DOUBLE_EQ(parsed.NumberOr("neg", 0.0), -2.5);
  ASSERT_NE(parsed.Find("text"), nullptr);
  EXPECT_EQ(parsed.Find("text")->string_value(),
            "line\nbreak \"quoted\" back\\slash");
  ASSERT_NE(parsed.Find("flag"), nullptr);
  EXPECT_TRUE(parsed.Find("flag")->bool_value());
  ASSERT_NE(parsed.Find("missing"), nullptr);
  EXPECT_TRUE(parsed.Find("missing")->is_null());
  const JsonValue* items = parsed.Find("items");
  ASSERT_NE(items, nullptr);
  ASSERT_EQ(items->items().size(), 2u);
  EXPECT_EQ(items->items()[1].string_value(), "two");
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  JsonValue out;
  EXPECT_FALSE(JsonValue::Parse("{", &out));
  EXPECT_FALSE(JsonValue::Parse("{\"a\":}", &out));
  EXPECT_FALSE(JsonValue::Parse("[1,]", &out));
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} trailing", &out));
  EXPECT_TRUE(JsonValue::Parse("  {\"a\": 1}  ", &out));
}

EpochRecord SampleRecord() {
  EpochRecord record;
  record.epoch = 7;
  record.graph_index = 1;
  record.has_d_loss = true;
  record.d_loss = 0.75;
  record.g_loss = 1.25;
  record.has_clus_loss = true;
  record.clus_loss = 0.0625;
  record.grad_norm = 3.5;
  record.guard_trips = 2;
  record.rollbacks = 1;
  record.wrote_checkpoint = true;
  record.checkpoint_ms = 12.5;
  record.peak_bytes = 1 << 20;
  record.encoder_peak_bytes = 1 << 18;
  record.decoder_peak_bytes = 1 << 17;
  record.discriminator_peak_bytes = 1 << 16;
  record.threads = 4;
  record.rss_bytes = 1 << 22;
  record.epoch_ms = 250.0;
  return record;
}

TEST(JsonlSchemaTest, EpochRecordRoundTrip) {
  EpochRecord record = SampleRecord();
  std::string line = EpochRecordToJson(record).Serialize();

  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(line, &parsed, &error)) << error;
  EpochRecord back;
  ASSERT_TRUE(EpochRecordFromJson(parsed, &back));
  EXPECT_EQ(back.epoch, record.epoch);
  EXPECT_EQ(back.graph_index, record.graph_index);
  ASSERT_TRUE(back.has_d_loss);
  EXPECT_DOUBLE_EQ(back.d_loss, record.d_loss);
  EXPECT_DOUBLE_EQ(back.g_loss, record.g_loss);
  ASSERT_TRUE(back.has_clus_loss);
  EXPECT_DOUBLE_EQ(back.clus_loss, record.clus_loss);
  EXPECT_DOUBLE_EQ(back.grad_norm, record.grad_norm);
  EXPECT_EQ(back.guard_trips, record.guard_trips);
  EXPECT_EQ(back.rollbacks, record.rollbacks);
  EXPECT_EQ(back.wrote_checkpoint, record.wrote_checkpoint);
  EXPECT_DOUBLE_EQ(back.checkpoint_ms, record.checkpoint_ms);
  EXPECT_EQ(back.peak_bytes, record.peak_bytes);
  EXPECT_EQ(back.encoder_peak_bytes, record.encoder_peak_bytes);
  EXPECT_EQ(back.decoder_peak_bytes, record.decoder_peak_bytes);
  EXPECT_EQ(back.discriminator_peak_bytes, record.discriminator_peak_bytes);
  EXPECT_EQ(back.threads, record.threads);
  EXPECT_EQ(back.rss_bytes, record.rss_bytes);
  EXPECT_DOUBLE_EQ(back.epoch_ms, record.epoch_ms);
}

TEST(JsonlSchemaTest, GeneratorOnlyEpochSerializesNullLosses) {
  EpochRecord record = SampleRecord();
  record.has_d_loss = false;
  record.has_clus_loss = false;
  std::string line = EpochRecordToJson(record).Serialize();
  EXPECT_NE(line.find("\"d_loss\":null"), std::string::npos);
  EXPECT_NE(line.find("\"clus_loss\":null"), std::string::npos);

  JsonValue parsed;
  ASSERT_TRUE(JsonValue::Parse(line, &parsed));
  EpochRecord back;
  ASSERT_TRUE(EpochRecordFromJson(parsed, &back));
  EXPECT_FALSE(back.has_d_loss);
  EXPECT_FALSE(back.has_clus_loss);
}

TEST(JsonlSchemaTest, FromJsonRejectsWrongSchemaOrMissingFields) {
  JsonValue good = EpochRecordToJson(SampleRecord());
  EpochRecord out;
  ASSERT_TRUE(EpochRecordFromJson(good, &out));

  JsonValue wrong_schema = JsonValue::Object();
  for (const auto& [key, value] : good.members()) {
    wrong_schema.Add(key, key == "schema" ? JsonValue::Int(99) : value);
  }
  EXPECT_FALSE(EpochRecordFromJson(wrong_schema, &out));

  JsonValue missing = JsonValue::Object();
  for (const auto& [key, value] : good.members()) {
    if (key != "epoch_ms") missing.Add(key, value);
  }
  EXPECT_FALSE(EpochRecordFromJson(missing, &out));
}

TEST(JsonlSchemaTest, RunLoggerWritesOneValidLinePerRecord) {
  std::string path = TempPath("run_logger_schema.jsonl");
  RunLogger logger;
  ASSERT_TRUE(logger.Open(path));
  const int kRecords = 5;
  for (int i = 0; i < kRecords; ++i) {
    EpochRecord record = SampleRecord();
    record.epoch = i;
    record.has_d_loss = (i % 2 == 0);
    record.has_clus_loss = record.has_d_loss;
    ASSERT_TRUE(logger.Log(record));
  }
  logger.Close();
  EXPECT_EQ(logger.records_written(), kRecords);

  std::string text;
  ASSERT_TRUE(util::ReadFileToString(path, &text));
  std::vector<std::string> lines = util::Split(text, "\n");
  ASSERT_EQ(static_cast<int>(lines.size()), kRecords);
  for (int i = 0; i < kRecords; ++i) {
    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(JsonValue::Parse(lines[i], &parsed, &error))
        << "line " << i << ": " << error;
    EpochRecord back;
    ASSERT_TRUE(EpochRecordFromJson(parsed, &back)) << "line " << i;
    EXPECT_EQ(back.epoch, i);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cpgan::obs
