// Backend dispatch and autotuner contract tests:
//  * CPGAN_KERNEL_BACKEND forces the named backend — in particular
//    "scalar" wins even on a machine where CPUID detects AVX2 (the
//    regression that would silently re-enable SIMD under a forced-scalar
//    reproducibility run);
//  * unknown / unavailable names fall back to auto-detection instead of
//    failing startup;
//  * SetBackend distinguishes unknown names from locally unavailable ones;
//  * the autotuned matmul tile width is a pure performance knob: every
//    candidate width (and odd non-candidate widths) yields a BITWISE
//    identical product within a backend;
//  * Matrix storage honors the 64-byte kernel alignment contract.

#include <cstdlib>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/kernels.h"
#include "tensor/matrix.h"
#include "testing/diff_harness.h"
#include "util/aligned.h"
#include "util/cpuid.h"

namespace cpgan::testing {
namespace {

namespace t = cpgan::tensor;
namespace k = cpgan::tensor::kernels;

/// Scoped CPGAN_KERNEL_BACKEND override + re-selection; restores the prior
/// environment AND the prior active backend on destruction so tests stay
/// order-independent.
class ScopedBackendEnv {
 public:
  explicit ScopedBackendEnv(const char* value)
      : previous_active_(k::Active().name) {
    const char* old = std::getenv("CPGAN_KERNEL_BACKEND");
    had_previous_ = old != nullptr;
    if (had_previous_) previous_env_ = old;
    ::setenv("CPGAN_KERNEL_BACKEND", value, /*overwrite=*/1);
    k::ReselectFromEnvironment();
  }

  ~ScopedBackendEnv() {
    if (had_previous_) {
      ::setenv("CPGAN_KERNEL_BACKEND", previous_env_.c_str(), 1);
    } else {
      ::unsetenv("CPGAN_KERNEL_BACKEND");
    }
    EXPECT_TRUE(k::SetBackend(previous_active_));
  }

 private:
  std::string previous_active_;
  std::string previous_env_;
  bool had_previous_ = false;
};

TEST(KernelBackend, ScalarAlwaysAvailableAndActiveIsListed) {
  bool scalar_listed = false;
  bool active_listed = false;
  for (const k::KernelOps* ops : k::AvailableBackends()) {
    if (std::string(ops->name) == "scalar") scalar_listed = true;
    if (ops == &k::Active()) active_listed = true;
  }
  EXPECT_TRUE(scalar_listed);
  EXPECT_TRUE(active_listed)
      << "active backend " << k::Active().name << " not in AvailableBackends";
}

TEST(KernelBackend, EnvForcesScalarEvenWhenSimdDetected) {
  ScopedBackendEnv env("scalar");
  EXPECT_STREQ(k::Active().name, "scalar");
  if (k::Avx2() != nullptr) {
    // The interesting half of the regression: AVX2 is detected and compiled
    // in, yet the env override still pins the scalar fallback.
    EXPECT_TRUE(cpgan::util::CpuSupportsAvx2());
    EXPECT_STRNE(k::Active().name, "avx2");
  }
}

TEST(KernelBackend, EnvForcesAvx2WhenAvailable) {
  if (k::Avx2() == nullptr) GTEST_SKIP() << "no AVX2 on this machine";
  ScopedBackendEnv env("avx2");
  EXPECT_STREQ(k::Active().name, "avx2");
}

TEST(KernelBackend, UnknownEnvNameFallsBackToAutoDetect) {
  const std::string expected =
      k::Avx2() ? "avx2" : (k::Neon() ? "neon" : "scalar");
  ScopedBackendEnv env("quantum");
  EXPECT_EQ(std::string(k::Active().name), expected);
}

TEST(KernelBackend, SetBackendRejectsUnknownName) {
  std::string error;
  EXPECT_FALSE(k::SetBackend("quantum", &error));
  EXPECT_NE(error.find("not a known backend"), std::string::npos) << error;
}

TEST(KernelBackend, SetBackendRejectsUnavailableKnownName) {
  // Exactly one of avx2/neon is compiled per architecture, so the other is
  // known-but-unavailable everywhere.
  const char* unavailable = k::Avx2() ? "neon" : "avx2";
  std::string error;
  EXPECT_FALSE(k::SetBackend(unavailable, &error));
  EXPECT_NE(error.find("not available on this machine"), std::string::npos)
      << error;
}

TEST(KernelBackend, TileWidthNeverChangesABit) {
  // 127x65x129: straddles the k-tile boundary and exercises the 32-wide,
  // 8-wide, and scalar-tail column paths for every candidate width.
  t::Matrix a = RandomMatrix(127, 65, 11000);
  t::Matrix b = RandomMatrix(65, 129, 12000);
  for (const k::KernelOps* ops : k::AvailableBackends()) {
    ScopedBackend backend_scope(ops->name);
    k::SetMatmulTileCols(k::AutotuneCandidates().front());
    t::Matrix baseline = t::Matmul(a, b);
    std::vector<int> widths(k::AutotuneCandidates());
    widths.push_back(8);    // narrower than any candidate
    widths.push_back(520);  // wider than the whole output
    for (int width : widths) {
      k::SetMatmulTileCols(width);
      EXPECT_EQ(k::MatmulTileCols(), width);
      t::Matrix got = t::Matmul(a, b);
      EXPECT_TRUE(BitwiseEqual(got, baseline))
          << ops->name << ": tile width " << width
          << " changed the product bitwise";
    }
    k::SetMatmulTileCols(0);  // back to autotuned for later tests
  }
}

TEST(KernelBackend, NonMultipleOfEightTileWidthIgnored) {
  k::SetMatmulTileCols(64);
  EXPECT_EQ(k::MatmulTileCols(), 64);
  k::SetMatmulTileCols(60);  // warned and ignored
  EXPECT_EQ(k::MatmulTileCols(), 64);
  k::SetMatmulTileCols(0);
}

TEST(KernelBackend, AutotunerPicksACandidate) {
  k::SetMatmulTileCols(0);
  // No CPGAN_KERNEL_TILE_COLS in the test environment, so this resolves via
  // the sweep; the result must be one of the candidates and must stick.
  ::unsetenv("CPGAN_KERNEL_TILE_COLS");
  const int chosen = k::MatmulTileCols();
  bool is_candidate = false;
  for (int c : k::AutotuneCandidates()) is_candidate |= (chosen == c);
  EXPECT_TRUE(is_candidate) << chosen;
  EXPECT_EQ(k::MatmulTileCols(), chosen);  // cached, no second sweep
}

TEST(KernelBackend, TileColsEnvOverride) {
  k::SetMatmulTileCols(0);
  ::setenv("CPGAN_KERNEL_TILE_COLS", "48", 1);
  EXPECT_EQ(k::MatmulTileCols(), 48);
  ::unsetenv("CPGAN_KERNEL_TILE_COLS");
  k::SetMatmulTileCols(0);
}

TEST(KernelBackend, MatrixStorageIs64ByteAligned) {
  for (int rows : {1, 3, 63, 64, 65}) {
    t::Matrix m(rows, rows);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(m.data()) %
                  cpgan::util::kKernelAlignment,
              0u)
        << rows << "x" << rows;
  }
}

}  // namespace
}  // namespace cpgan::testing
