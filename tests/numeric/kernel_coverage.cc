// Coverage backstop for the kernel bundle: after every differential test in
// this binary has run, assert that each (backend, op) pair in
// KernelCheckRegistry::RequiredChecks() — every compiled backend crossed
// with every KernelOps slot — was validated against the double-accumulator
// references at least once. Adding an op to KernelOps (and its name to
// kernels::OpNames()) or compiling in a new backend without extending the
// differential sweep fails the bundle here.
//
// Same ordering requirements as gradcheck_coverage.cc, enforced by
// tests/CMakeLists.txt: this file must be linked into the same executable
// as the kernel diff tests, and must be the LAST source of the bundle so
// gtest's registration-order execution runs it after the sweep.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "testing/kernel_coverage.h"

namespace cpgan::testing {
namespace {

// Sanity: the required set itself is well-formed (non-empty, no dups).
TEST(KernelCoverage, RequiredChecksListIsWellFormed) {
  const std::vector<std::string> required =
      KernelCheckRegistry::RequiredChecks();
  ASSERT_FALSE(required.empty());
  std::set<std::string> unique(required.begin(), required.end());
  EXPECT_EQ(unique.size(), required.size())
      << "duplicate entry in RequiredChecks";
}

TEST(KernelCoverage, EveryBackendOpPairHasADifferentialCheck) {
  const std::vector<std::string> missing =
      KernelCheckRegistry::Global().Missing();
  std::string joined;
  for (const std::string& pair : missing) {
    if (!joined.empty()) joined += ", ";
    joined += pair;
  }
  EXPECT_TRUE(missing.empty())
      << missing.size()
      << " (backend, op) pair(s) have no differential check: " << joined
      << "\nAdd a MarkCovered(...) alongside a reference comparison in "
         "tests/numeric/kernel_diff_test.cc, or remove the op from "
         "kernels::OpNames().";
}

}  // namespace
}  // namespace cpgan::testing
