// Gradient checks for every autograd op in tensor/ops.h via the central
// finite-difference checker (src/testing/gradcheck.h). Each CheckOpGradient
// call marks its op in the coverage registry; gradcheck_coverage.cc asserts
// at teardown that no required op was missed. Shapes deliberately include
// non-square and degenerate cases (1 x N, N x 1) — several historical bugs
// only bite off the square path.

#include <memory>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "testing/gradcheck.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace cpgan::tensor {
namespace {

using cpgan::testing::CheckOpGradient;
using cpgan::testing::GradCheckOptions;
using cpgan::testing::GradCheckResult;
using cpgan::testing::TestMatrix;

Tensor Param(int rows, int cols, float scale = 1.0f, uint64_t seed = 7) {
  return Tensor(TestMatrix(rows, cols, scale, seed), /*requires_grad=*/true);
}

/// Shifts every entry by `offset` (to move inputs away from kinks/poles).
Tensor ShiftedParam(int rows, int cols, float offset, float scale = 0.5f,
                    uint64_t seed = 7) {
  Tensor t = Param(rows, cols, scale, seed);
  for (int64_t i = 0; i < t.value().size(); ++i) {
    t.mutable_value().data()[i] += offset;
  }
  return t;
}

void ExpectOk(const GradCheckResult& result) {
  EXPECT_TRUE(result.ok) << result.Summary();
  EXPECT_GT(result.entries_checked, 0);
}

/// The shape grid every elementwise op is checked on: square, wide, tall,
/// single row, single column, single element.
const std::vector<std::pair<int, int>> kShapes = {
    {3, 3}, {2, 5}, {5, 2}, {1, 4}, {4, 1}, {1, 1}};

TEST(GradCheckOps, Add) {
  for (auto [r, c] : kShapes) {
    Tensor a = Param(r, c, 1.0f, 1);
    Tensor b = Param(r, c, 1.0f, 2);
    ExpectOk(CheckOpGradient(
        "Add", [&] { return SumAll(Square(Add(a, b))); }, {a, b}));
  }
}

TEST(GradCheckOps, Sub) {
  for (auto [r, c] : kShapes) {
    Tensor a = Param(r, c, 1.0f, 3);
    Tensor b = Param(r, c, 1.0f, 4);
    ExpectOk(CheckOpGradient(
        "Sub", [&] { return SumAll(Square(Sub(a, b))); }, {a, b}));
  }
}

TEST(GradCheckOps, Mul) {
  for (auto [r, c] : kShapes) {
    Tensor a = Param(r, c, 1.0f, 5);
    Tensor b = Param(r, c, 1.0f, 6);
    ExpectOk(CheckOpGradient(
        "Mul", [&] { return SumAll(Mul(a, b)); }, {a, b}));
  }
}

TEST(GradCheckOps, Div) {
  for (auto [r, c] : kShapes) {
    Tensor a = Param(r, c, 1.0f, 7);
    Tensor b = ShiftedParam(r, c, 2.0f, 0.5f, 8);  // denominator away from 0
    ExpectOk(CheckOpGradient(
        "Div", [&] { return SumAll(Div(a, b)); }, {a, b}));
  }
}

TEST(GradCheckOps, AddRowVec) {
  for (auto [r, c] : kShapes) {
    Tensor x = Param(r, c, 1.0f, 9);
    Tensor v = Param(1, c, 1.0f, 10);
    ExpectOk(CheckOpGradient(
        "AddRowVec", [&] { return SumAll(Square(AddRowVec(x, v))); },
        {x, v}));
  }
}

TEST(GradCheckOps, MulRowVec) {
  for (auto [r, c] : kShapes) {
    Tensor x = Param(r, c, 1.0f, 11);
    Tensor v = Param(1, c, 1.0f, 12);
    ExpectOk(CheckOpGradient(
        "MulRowVec", [&] { return SumAll(Square(MulRowVec(x, v))); },
        {x, v}));
  }
}

TEST(GradCheckOps, MulColVec) {
  for (auto [r, c] : kShapes) {
    Tensor x = Param(r, c, 1.0f, 13);
    Tensor v = Param(r, 1, 1.0f, 14);
    ExpectOk(CheckOpGradient(
        "MulColVec", [&] { return SumAll(Square(MulColVec(x, v))); },
        {x, v}));
  }
}

TEST(GradCheckOps, ScaleAndAddConstAndNeg) {
  Tensor x = Param(3, 5, 1.0f, 15);
  ExpectOk(CheckOpGradient(
      "Scale", [&] { return SumAll(Square(Scale(x, 1.7f))); }, {x}));
  ExpectOk(CheckOpGradient(
      "AddConst", [&] { return SumAll(Square(AddConst(x, 0.4f))); }, {x}));
  ExpectOk(CheckOpGradient(
      "Neg", [&] { return SumAll(Square(Neg(x))); }, {x}));
}

TEST(GradCheckOps, ElementwiseUnary) {
  // Relu needs inputs away from the kink at 0 (finite differences straddle
  // it); shift by 0.5 with scale 0.4 keeps |x| in [0.1, 0.9].
  Tensor pos = ShiftedParam(4, 3, 0.5f, 0.4f, 16);
  Tensor neg = ShiftedParam(4, 3, -0.5f, 0.4f, 17);
  ExpectOk(CheckOpGradient(
      "Relu", [&] { return SumAll(Square(Relu(pos))); }, {pos}));
  ExpectOk(CheckOpGradient(
      "Relu", [&] { return SumAll(Square(Relu(neg))); }, {neg}));

  Tensor x = Param(3, 4, 1.5f, 18);
  ExpectOk(CheckOpGradient(
      "Sigmoid", [&] { return SumAll(Square(Sigmoid(x))); }, {x}));
  ExpectOk(CheckOpGradient(
      "Tanh", [&] { return SumAll(Square(Tanh(x))); }, {x}));
  ExpectOk(CheckOpGradient(
      "Exp", [&] { return SumAll(Exp(Scale(x, 0.5f))); }, {x}));
  ExpectOk(CheckOpGradient(
      "Square", [&] { return SumAll(Square(x)); }, {x}));
  ExpectOk(CheckOpGradient(
      "Softplus", [&] { return SumAll(Square(Softplus(x))); }, {x}));
  ExpectOk(CheckOpGradient(
      "LogSigmoid", [&] { return SumAll(Square(LogSigmoid(x))); }, {x}));

  // Log/Sqrt/Reciprocal need strictly positive inputs clear of their
  // clamps/poles.
  Tensor positive = ShiftedParam(3, 4, 2.0f, 0.8f, 19);
  ExpectOk(CheckOpGradient(
      "Log", [&] { return SumAll(Square(Log(positive))); }, {positive}));
  ExpectOk(CheckOpGradient(
      "Sqrt", [&] { return SumAll(Square(Sqrt(positive))); }, {positive}));
  ExpectOk(CheckOpGradient(
      "Reciprocal", [&] { return SumAll(Square(Reciprocal(positive))); },
      {positive}));
}

TEST(GradCheckOps, SoftmaxRows) {
  for (auto [r, c] : kShapes) {
    Tensor x = Param(r, c, 1.5f, 20);
    Tensor weights = Tensor(TestMatrix(r, c, 1.0f, 21), false);
    // Weighted sum so the softmax Jacobian's off-diagonal terms matter.
    ExpectOk(CheckOpGradient(
        "SoftmaxRows",
        [&] { return SumAll(Mul(SoftmaxRows(x), weights)); }, {x}));
  }
}

TEST(GradCheckOps, SoftmaxRowsZeroColumnsRegression) {
  // Pinned regression: SoftmaxRows on an n x 0 input used to read row[0]
  // out of bounds while searching for the row max. The softmax of an empty
  // row is the empty row, and backward must still reach the input.
  Tensor x = Param(3, 0, 1.0f, 22);
  Tensor y = SoftmaxRows(x);
  EXPECT_EQ(y.rows(), 3);
  EXPECT_EQ(y.cols(), 0);
  Tensor loss = Add(SumAll(y), SumAll(x));
  Backward(loss);
  EXPECT_EQ(x.grad().rows(), 3);
}

TEST(GradCheckOps, DropoutEvalIsIdentity) {
  // Eval-mode dropout must be the identity in both value and gradient.
  Tensor x = Param(4, 3, 1.0f, 23);
  util::Rng rng(11);
  ExpectOk(CheckOpGradient(
      "Dropout",
      [&] { return SumAll(Square(Dropout(x, 0.5f, rng, /*train=*/false))); },
      {x}));
  Tensor out = Dropout(x, 0.5f, rng, /*train=*/false);
  EXPECT_EQ(out.node(), x.node());  // literally the same tensor
}

TEST(GradCheckOps, DropoutTrainMask) {
  // Train-mode: re-seed the Rng inside the loss so every finite-difference
  // evaluation sees the same mask.
  Tensor x = ShiftedParam(4, 5, 1.5f, 0.5f, 24);
  ExpectOk(CheckOpGradient(
      "Dropout",
      [&] {
        util::Rng rng(99);
        return SumAll(Square(Dropout(x, 0.4f, rng, /*train=*/true)));
      },
      {x}));
}

TEST(GradCheckOps, Matmul) {
  const std::vector<std::array<int, 3>> shapes = {
      {3, 4, 2}, {1, 5, 3}, {4, 1, 3}, {3, 5, 1}, {1, 1, 1}};
  for (auto [n, k, m] : shapes) {
    Tensor a = Param(n, k, 1.0f, 25);
    Tensor b = Param(k, m, 1.0f, 26);
    ExpectOk(CheckOpGradient(
        "Matmul", [&] { return SumAll(Square(Matmul(a, b))); }, {a, b}));
  }
}

TEST(GradCheckOps, Spmm) {
  auto sparse = std::make_shared<SparseMatrix>(
      3, 4, std::vector<Triplet>{
                {0, 0, 1.0f}, {0, 3, -2.0f}, {1, 1, 0.5f}, {2, 2, 1.5f},
                {2, 0, -0.7f}});
  Tensor x = Param(4, 3, 1.0f, 27);
  ExpectOk(CheckOpGradient(
      "Spmm", [&] { return SumAll(Square(Spmm(sparse, x))); }, {x}));
}

TEST(GradCheckOps, Transpose) {
  for (auto [r, c] : kShapes) {
    Tensor x = Param(r, c, 1.0f, 28);
    Tensor mixer = Tensor(TestMatrix(c, r, 1.0f, 29), false);
    ExpectOk(CheckOpGradient(
        "Transpose", [&] { return SumAll(Mul(Transpose(x), mixer)); }, {x}));
  }
}

TEST(GradCheckOps, Concat) {
  Tensor a = Param(2, 3, 1.0f, 30);
  Tensor b = Param(4, 3, 1.0f, 31);
  ExpectOk(CheckOpGradient(
      "ConcatRows", [&] { return SumAll(Square(ConcatRows({a, b}))); },
      {a, b}));
  Tensor c = Param(3, 2, 1.0f, 32);
  Tensor d = Param(3, 4, 1.0f, 33);
  ExpectOk(CheckOpGradient(
      "ConcatCols", [&] { return SumAll(Square(ConcatCols({c, d}))); },
      {c, d}));
}

TEST(GradCheckOps, GatherRows) {
  Tensor x = Param(5, 3, 1.0f, 34);
  // Duplicate indices: backward must scatter-add, not overwrite.
  std::vector<int> indices = {4, 0, 2, 0, 0};
  ExpectOk(CheckOpGradient(
      "GatherRows",
      [&] { return SumAll(Square(GatherRows(x, indices))); }, {x}));
  // Empty gather: zero-row output, gradient flows (as zero) to the input.
  Tensor empty_out = GatherRows(x, {});
  EXPECT_EQ(empty_out.rows(), 0);
  EXPECT_EQ(empty_out.cols(), 3);
}

TEST(GradCheckOps, SliceCols) {
  Tensor x = Param(3, 6, 1.0f, 35);
  ExpectOk(CheckOpGradient(
      "SliceCols", [&] { return SumAll(Square(SliceCols(x, 1, 3))); }, {x}));
  // Zero-length slice.
  Tensor zero = SliceCols(x, 2, 0);
  EXPECT_EQ(zero.cols(), 0);
}

TEST(GradCheckOps, Reshape) {
  Tensor x = Param(3, 4, 1.0f, 36);
  Tensor mixer = Tensor(TestMatrix(6, 2, 1.0f, 37), false);
  ExpectOk(CheckOpGradient(
      "Reshape", [&] { return SumAll(Mul(Reshape(x, 6, 2), mixer)); }, {x}));
}

TEST(GradCheckOps, Reductions) {
  for (auto [r, c] : kShapes) {
    Tensor x = Param(r, c, 1.0f, 38);
    ExpectOk(CheckOpGradient(
        "SumAll", [&] { return Square(SumAll(x)); }, {x}));
    ExpectOk(CheckOpGradient(
        "MeanAll", [&] { return Square(MeanAll(x)); }, {x}));
    ExpectOk(CheckOpGradient(
        "ColMean", [&] { return SumAll(Square(ColMean(x))); }, {x}));
    ExpectOk(CheckOpGradient(
        "RowSum", [&] { return SumAll(Square(RowSum(x))); }, {x}));
    ExpectOk(CheckOpGradient(
        "RowMean", [&] { return SumAll(Square(RowMean(x))); }, {x}));
  }
  // RowL2Norm has a pole at zero rows; shift inputs away from the origin.
  Tensor away = ShiftedParam(4, 3, 1.0f, 0.3f, 39);
  ExpectOk(CheckOpGradient(
      "RowL2Norm", [&] { return SumAll(Square(RowL2Norm(away))); }, {away}));
}

TEST(GradCheckOps, Losses) {
  Tensor logits = Param(4, 3, 1.5f, 40);
  Matrix targets(4, 3);
  uint64_t state = 5;
  for (int64_t i = 0; i < targets.size(); ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    targets.data()[i] = (state >> 62) & 1 ? 1.0f : 0.0f;
  }
  ExpectOk(CheckOpGradient(
      "BceWithLogits",
      [&] { return BceWithLogits(logits, targets, 2.0f); }, {logits}));

  Tensor a = Param(3, 4, 1.0f, 41);
  Tensor b = Param(3, 4, 1.0f, 42);
  ExpectOk(CheckOpGradient("MseLoss", [&] { return MseLoss(a, b); }, {a, b}));
}

}  // namespace
}  // namespace cpgan::tensor
