// Kernel differential tests: every optimized tensor kernel, under EVERY
// compiled kernel backend (scalar, and avx2/neon where the hardware has
// them), against the naive double-accumulator references in
// src/testing/diff_harness.h, on shapes that straddle the serial/blocked
// flop cutoff and the 64-wide tile boundaries (63/64/65), and at 1, 2, and
// 8 threads. Two contracts are enforced:
//   1. Accuracy: the optimized float result stays within a small relative
//      tolerance of the double reference (summation order differs, bitwise
//      equality is not expected). The tolerance is shared by all backends —
//      FMA contraction in avx2 changes results only below it.
//   2. Determinism: within a backend, the result at any thread count is
//      BITWISE identical to the 1-thread result (the thread-pool blocking
//      is static and per-element accumulation order is panel-independent).
// Every (backend, op) pair checked here is recorded in KernelCheckRegistry;
// kernel_coverage.cc fails this bundle if a backend ships an op the sweep
// missed.

#include <algorithm>
#include <array>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/kernels.h"
#include "tensor/matrix.h"
#include "tensor/sparse.h"
#include "testing/diff_harness.h"
#include "testing/kernel_coverage.h"

namespace cpgan::testing {
namespace {

namespace t = cpgan::tensor;

/// Relative tolerance for float kernels vs the double reference. Worst case
/// here is a 127-term dot product of values in [-1, 1]; float error grows
/// like sqrt(k) * eps with random rounding, so 1e-4 has ~40x headroom.
constexpr double kTol = 1e-4;

const std::vector<int>& Threads() {
  static const std::vector<int> counts = {1, 2, 8};
  return counts;
}

/// Names of every backend compiled into this binary and usable on this
/// machine. The scalar backend is always present, so the sweep is never
/// vacuous on pre-AVX2 hardware.
std::vector<std::string> BackendNames() {
  std::vector<std::string> names;
  for (const t::kernels::KernelOps* ops : t::kernels::AvailableBackends()) {
    names.push_back(ops->name);
  }
  return names;
}

void MarkCovered(const std::string& backend, const std::string& op) {
  KernelCheckRegistry::Global().MarkCovered(backend, op);
}

/// (n, k, m) triples mixing below-cutoff serial shapes with blocked shapes
/// at tile boundaries. kSerialMatmulFlops = 1 << 15, so 16x16x16 (8K flops)
/// stays serial while 65x65x65 (~549K) takes the blocked path.
std::vector<std::array<int, 3>> MatmulShapes() {
  std::vector<std::array<int, 3>> shapes = {
      {1, 1, 1},    // degenerate
      {5, 7, 3},    // tiny serial
      {1, 128, 64},  // single row, wide K
      {64, 1, 64},   // K = 1
      {16, 16, 16},  // just below the serial cutoff
      {63, 64, 65},  // straddles every tile boundary at once
      {64, 64, 64},  // exact tiles
      {65, 63, 64},
      {127, 65, 63},  // two tiles + remainder in each dim
  };
  return shapes;
}

TEST(KernelDiff, Matmul) {
  for (const std::string& backend : BackendNames()) {
    ScopedBackend backend_scope(backend);
    MarkCovered(backend, "matmul_tile");
    for (auto [n, k, m] : MatmulShapes()) {
      t::Matrix a = RandomMatrix(n, k, 1000 + n * 31 + k);
      t::Matrix b = RandomMatrix(k, m, 2000 + k * 31 + m);
      t::Matrix want = RefMatmul(a, b);

      t::Matrix first;
      for (int threads : Threads()) {
        ScopedThreads scope(threads);
        t::Matrix got = t::Matmul(a, b);
        DiffStats stats = Compare(got, want);
        EXPECT_LT(stats.max_rel_diff, kTol)
            << backend << " Matmul " << n << "x" << k << "x" << m << " @"
            << threads << " threads: " << stats.Summary();
        if (threads == Threads().front()) {
          first = got;
        } else {
          EXPECT_TRUE(BitwiseEqual(got, first))
              << backend << " Matmul " << n << "x" << k << "x" << m
              << " differs bitwise between 1 and " << threads << " threads";
        }
      }
    }
  }
}

TEST(KernelDiff, MatmulTN) {
  for (const std::string& backend : BackendNames()) {
    ScopedBackend backend_scope(backend);
    for (auto [n, k, m] : MatmulShapes()) {
      // A is k x n, result is A^T B = n x m.
      t::Matrix a = RandomMatrix(k, n, 3000 + n * 31 + k);
      t::Matrix b = RandomMatrix(k, m, 4000 + k * 31 + m);
      t::Matrix want = RefMatmulTN(a, b);

      t::Matrix first;
      for (int threads : Threads()) {
        ScopedThreads scope(threads);
        t::Matrix got = t::MatmulTN(a, b);
        DiffStats stats = Compare(got, want);
        EXPECT_LT(stats.max_rel_diff, kTol)
            << backend << " MatmulTN " << n << "x" << k << "x" << m << " @"
            << threads << " threads: " << stats.Summary();
        if (threads == Threads().front()) {
          first = got;
        } else {
          EXPECT_TRUE(BitwiseEqual(got, first))
              << backend << " MatmulTN " << n << "x" << k << "x" << m
              << " differs bitwise between 1 and " << threads << " threads";
        }
      }
    }
  }
}

TEST(KernelDiff, MatmulNT) {
  for (const std::string& backend : BackendNames()) {
    ScopedBackend backend_scope(backend);
    MarkCovered(backend, "dot");  // MatmulNT is dot-product form
    for (auto [n, k, m] : MatmulShapes()) {
      // B is m x k, result is A B^T = n x m.
      t::Matrix a = RandomMatrix(n, k, 5000 + n * 31 + k);
      t::Matrix b = RandomMatrix(m, k, 6000 + k * 31 + m);
      t::Matrix want = RefMatmulNT(a, b);

      t::Matrix first;
      for (int threads : Threads()) {
        ScopedThreads scope(threads);
        t::Matrix got = t::MatmulNT(a, b);
        DiffStats stats = Compare(got, want);
        EXPECT_LT(stats.max_rel_diff, kTol)
            << backend << " MatmulNT " << n << "x" << k << "x" << m << " @"
            << threads << " threads: " << stats.Summary();
        if (threads == Threads().front()) {
          first = got;
        } else {
          EXPECT_TRUE(BitwiseEqual(got, first))
              << backend << " MatmulNT " << n << "x" << k << "x" << m
              << " differs bitwise between 1 and " << threads << " threads";
        }
      }
    }
  }
}

TEST(KernelDiff, MatmulAccum) {
  for (const std::string& backend : BackendNames()) {
    ScopedBackend backend_scope(backend);
    for (auto [n, k, m] : MatmulShapes()) {
      t::Matrix a = RandomMatrix(n, k, 6500 + n);
      t::Matrix b = RandomMatrix(k, m, 6600 + m);
      t::Matrix base = RandomMatrix(n, m, 6700 + n + m);

      // want = base + A*B, double accumulation for the product part.
      t::Matrix want = RefMatmul(a, b);
      for (int64_t i = 0; i < want.size(); ++i) {
        want.data()[i] += base.data()[i];
      }

      t::Matrix first;
      for (int threads : Threads()) {
        ScopedThreads scope(threads);
        t::Matrix got = base;
        t::MatmulAccum(a, b, got);
        DiffStats stats = Compare(got, want);
        EXPECT_LT(stats.max_rel_diff, kTol)
            << backend << " MatmulAccum " << n << "x" << k << "x" << m << " @"
            << threads << " threads: " << stats.Summary();
        if (threads == Threads().front()) {
          first = got;
        } else {
          EXPECT_TRUE(BitwiseEqual(got, first))
              << backend << " MatmulAccum " << n << "x" << k << "x" << m
              << " differs bitwise between 1 and " << threads << " threads";
        }
      }
    }
  }
}

TEST(KernelDiff, Spmm) {
  struct Case {
    int rows, cols, feat;
    double density;
  };
  const std::vector<Case> cases = {
      {1, 1, 1, 1.0},   {7, 5, 3, 0.4},   {63, 64, 65, 0.1},
      {64, 64, 64, 0.05}, {127, 65, 63, 0.02}, {50, 50, 8, 0.0},  // all-zero
  };
  for (const std::string& backend : BackendNames()) {
    ScopedBackend backend_scope(backend);
    MarkCovered(backend, "axpy");  // SpMM rows accumulate via ops.axpy
    for (const Case& c : cases) {
      t::SparseMatrix s = RandomSparse(c.rows, c.cols, c.density,
                                       7000 + c.rows * 131 + c.cols);
      t::Matrix d = RandomMatrix(c.cols, c.feat, 8000 + c.feat);
      t::Matrix want = RefSpmm(s, d);
      t::Matrix want_t =
          RefSpmmTransposed(s, RandomMatrix(c.rows, c.feat, 9000));
      t::Matrix d_t = RandomMatrix(c.rows, c.feat, 9000);

      t::Matrix first, first_t;
      for (int threads : Threads()) {
        ScopedThreads scope(threads);
        t::Matrix got = s.Multiply(d);
        DiffStats stats = Compare(got, want);
        EXPECT_LT(stats.max_rel_diff, kTol)
            << backend << " Spmm " << c.rows << "x" << c.cols
            << " nnz=" << s.nnz() << " @" << threads
            << " threads: " << stats.Summary();

        t::Matrix got_t = s.MultiplyTransposed(d_t);
        DiffStats stats_t = Compare(got_t, want_t);
        EXPECT_LT(stats_t.max_rel_diff, kTol)
            << backend << " SpmmT " << c.rows << "x" << c.cols
            << " nnz=" << s.nnz() << " @" << threads
            << " threads: " << stats_t.Summary();

        if (threads == Threads().front()) {
          first = got;
          first_t = got_t;
        } else {
          EXPECT_TRUE(BitwiseEqual(got, first))
              << backend << " Spmm differs bitwise between 1 and " << threads
              << " threads";
          EXPECT_TRUE(BitwiseEqual(got_t, first_t))
              << backend << " SpmmT differs bitwise between 1 and " << threads
              << " threads";
        }
      }
    }
  }
}

TEST(KernelDiff, SparseTransposeAgreesWithDense) {
  t::SparseMatrix s = RandomSparse(65, 63, 0.1, 9100);
  t::Matrix dense_t = RefTranspose(s.ToDense());
  t::Matrix got = s.Transposed().ToDense();
  DiffStats stats = Compare(got, dense_t);
  EXPECT_EQ(stats.max_abs_diff, 0.0) << stats.Summary();  // pure reshuffle
}

TEST(KernelDiff, Reductions) {
  // Matrix::Sum / Norm / Transposed against serial double-accumulator
  // references, across the boundary dims, per backend.
  for (const std::string& backend : BackendNames()) {
    ScopedBackend backend_scope(backend);
    MarkCovered(backend, "sum");
    MarkCovered(backend, "sumsq");
    for (int rows : BoundaryDims()) {
      for (int cols : {1, 64, 65}) {
        t::Matrix m = RandomMatrix(rows, cols, 9200 + rows * 7 + cols);

        double want_sum = RefSum(m);
        double want_norm = RefFrobeniusNorm(m);

        float first_sum = 0.0f, first_norm = 0.0f;
        for (int threads : Threads()) {
          ScopedThreads scope(threads);
          float got_sum = m.Sum();
          float got_norm = m.Norm();
          EXPECT_NEAR(got_sum, want_sum,
                      kTol * std::max(1.0, std::abs(want_sum)))
              << backend << " " << rows << "x" << cols << " @" << threads;
          EXPECT_NEAR(got_norm, want_norm, kTol * std::max(1.0, want_norm))
              << backend << " " << rows << "x" << cols << " @" << threads;
          if (threads == Threads().front()) {
            first_sum = got_sum;
            first_norm = got_norm;
          } else {
            EXPECT_EQ(got_sum, first_sum)
                << backend << " Sum not thread-deterministic";
            EXPECT_EQ(got_norm, first_norm)
                << backend << " Norm not thread-deterministic";
          }
        }

        t::Matrix transposed = m.Transposed();
        EXPECT_EQ(Compare(transposed, RefTranspose(m)).max_abs_diff, 0.0);
      }
    }
  }
}

TEST(KernelDiff, InPlaceOps) {
  for (const std::string& backend : BackendNames()) {
    ScopedBackend backend_scope(backend);
    MarkCovered(backend, "add");
    MarkCovered(backend, "axpy");
    MarkCovered(backend, "scale");
    for (int rows : {1, 63, 64, 65}) {
      t::Matrix a = RandomMatrix(rows, 65, 9300 + rows);
      t::Matrix b = RandomMatrix(rows, 65, 9400 + rows);

      t::Matrix add = a;
      add.AddInPlace(b);
      t::Matrix axpy = a;
      axpy.Axpy(-0.5f, b);
      t::Matrix scaled = a;
      scaled.Scale(1.25f);
      for (int64_t i = 0; i < a.size(); ++i) {
        ASSERT_FLOAT_EQ(add.data()[i], a.data()[i] + b.data()[i]) << backend;
        ASSERT_FLOAT_EQ(axpy.data()[i], a.data()[i] - 0.5f * b.data()[i])
            << backend;
        ASSERT_FLOAT_EQ(scaled.data()[i], a.data()[i] * 1.25f) << backend;
      }
    }
  }
}

}  // namespace
}  // namespace cpgan::testing
