// Hand-computed golden values for the MMD estimators and the EMD/TV
// common-support handling. These pin the two bugs flushed by the numeric
// harness in the eval stack:
//   * the biased (V-statistic) MMD self-pair inflation — the unbiased
//     estimator must remove exactly the k(p,p) = 1 diagonal terms;
//   * unequal-length histogram comparison — both inputs are zero-padded to
//     a common support and normalized there, never truncated.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "eval/mmd.h"

namespace cpgan::eval {
namespace {

// Point masses on a 2-bin support: EMD(p, q) = 1, TV(p, q) = 1, so under
// both Gaussian kernels (sigma = 1) k(p, q) = exp(-1/2) and k(p, p) = 1.
const std::vector<double> kP = {1.0, 0.0};
const std::vector<double> kQ = {0.0, 1.0};

TEST(MmdGolden, KernelValues) {
  EXPECT_NEAR(Emd1D(kP, kQ), 1.0, 1e-12);
  EXPECT_NEAR(TotalVariation(kP, kQ), 1.0, 1e-12);
}

TEST(MmdGolden, BiasedEstimator) {
  // a = {p, q}, b = {p}, sigma = 1, e = exp(-1/2):
  //   within_a = (1 + e + e + 1) / 4 = (1 + e) / 2
  //   within_b = 1
  //   cross    = (k(p,p) + k(q,p)) / 2 = (1 + e) / 2
  //   MMD^2    = (1+e)/2 + 1 - 2(1+e)/2 = (1 - e) / 2
  const double e = std::exp(-0.5);
  std::vector<std::vector<double>> a = {kP, kQ};
  std::vector<std::vector<double>> b = {kP};
  const double want = (1.0 - e) / 2.0;  // ~0.1967346
  EXPECT_NEAR(Mmd(a, b, MmdKernel::kGaussianEmd, 1.0, MmdEstimator::kBiased),
              want, 1e-12);
  EXPECT_NEAR(Mmd(a, b, MmdKernel::kGaussianTv, 1.0, MmdEstimator::kBiased),
              want, 1e-12);
}

TEST(MmdGolden, UnbiasedEstimator) {
  // Same sets, unbiased: within_a excludes the diagonal,
  //   within_a = (e + e) / 2 = e
  //   within_b = 1 (singleton fallback)
  //   cross    = (1 + e) / 2
  //   MMD^2    = e + 1 - (1 + e) = 0 exactly.
  // The old always-biased estimator reported (1-e)/2 ~ 0.197 here even
  // though b is drawn from inside a — that upward bias is the satellite-(a)
  // bug this test pins.
  std::vector<std::vector<double>> a = {kP, kQ};
  std::vector<std::vector<double>> b = {kP};
  EXPECT_NEAR(
      Mmd(a, b, MmdKernel::kGaussianEmd, 1.0, MmdEstimator::kUnbiased), 0.0,
      1e-12);
  EXPECT_NEAR(
      Mmd(a, b, MmdKernel::kGaussianTv, 1.0, MmdEstimator::kUnbiased), 0.0,
      1e-12);
}

TEST(MmdGolden, SigmaScaling) {
  // Doubling sigma divides the exponent by 4: k = exp(-1/8).
  std::vector<std::vector<double>> a = {kP};
  std::vector<std::vector<double>> b = {kQ};
  // Singletons: MMD^2 = k(p,p) + k(q,q) - 2 k(p,q) = 2 - 2 exp(-1/8).
  const double want = 2.0 - 2.0 * std::exp(-0.125);
  EXPECT_NEAR(Mmd(a, b, MmdKernel::kGaussianEmd, 2.0, MmdEstimator::kBiased),
              want, 1e-12);
  EXPECT_NEAR(
      Mmd(a, b, MmdKernel::kGaussianEmd, 2.0, MmdEstimator::kUnbiased), want,
      1e-12);
}

TEST(MmdGolden, UnequalLengthHistogramsRegression) {
  // Satellite (b) pin: p = [2, 2] (a 2-bin degree histogram) vs
  // q = [1, 1, 1, 1] (a 4-bin one). On the common 4-bin support:
  //   p -> [.5, .5, 0, 0], q -> [.25, .25, .25, .25]
  //   CDF diffs: .25, .5, .25, 0  => EMD = 1.0
  //   TV = (|.25| + |.25| + |.25| + |.25|) / 2 = 0.5
  // Truncating to the shorter support (the failure mode this guards
  // against) would instead compare [.5,.5] vs [.5,.5] and report 0.
  std::vector<double> p = {2.0, 2.0};
  std::vector<double> q = {1.0, 1.0, 1.0, 1.0};
  EXPECT_NEAR(Emd1D(p, q), 1.0, 1e-12);
  EXPECT_NEAR(Emd1D(q, p), 1.0, 1e-12);
  EXPECT_NEAR(TotalVariation(p, q), 0.5, 1e-12);
  EXPECT_NEAR(TotalVariation(q, p), 0.5, 1e-12);
}

TEST(MmdGolden, NormalizationScaleInvariance) {
  // Histograms are normalized on the common support, so overall counts
  // cancel: a graph's raw degree counts and its degree frequencies give
  // identical distances.
  std::vector<double> counts = {6.0, 3.0, 1.0, 0.0, 2.0};
  std::vector<double> freqs = {0.5, 0.25, 1.0 / 12, 0.0, 1.0 / 6};
  std::vector<double> other = {1.0, 2.0, 3.0};
  EXPECT_NEAR(Emd1D(counts, other), Emd1D(freqs, other), 1e-12);
  EXPECT_NEAR(TotalVariation(counts, other), TotalVariation(freqs, other),
              1e-12);
  EXPECT_NEAR(Emd1D(counts, freqs), 0.0, 1e-12);
}

TEST(MmdGolden, AllZeroHistograms) {
  // Degenerate but reachable (an empty graph's histogram): all-zero inputs
  // normalize to all-zero and compare as identical.
  std::vector<double> zero2 = {0.0, 0.0};
  std::vector<double> zero5 = {0.0, 0.0, 0.0, 0.0, 0.0};
  EXPECT_NEAR(Emd1D(zero2, zero5), 0.0, 1e-12);
  EXPECT_NEAR(TotalVariation(zero2, zero5), 0.0, 1e-12);
  // Against a real distribution the zero histogram carries no mass; TV
  // stays within [0, 1].
  std::vector<double> p = {1.0, 1.0};
  double tv = TotalVariation(zero5, p);
  EXPECT_GE(tv, 0.0);
  EXPECT_LE(tv, 1.0);
}

}  // namespace
}  // namespace cpgan::eval
