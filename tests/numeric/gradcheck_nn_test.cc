// Gradient checks for every nn module, including the degenerate shapes the
// encoder actually produces (single-node communities, empty pools). Each
// check covers ALL module parameters plus the inputs in one GradCheck call.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "nn/gcn.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "nn/pairnorm.h"
#include "nn/topk_pool.h"
#include "tensor/ops.h"
#include "testing/gradcheck.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace cpgan::nn {
namespace {

namespace t = cpgan::tensor;
using cpgan::testing::CheckOpGradient;
using cpgan::testing::GradCheckResult;
using cpgan::testing::TestMatrix;

t::Tensor Param(int rows, int cols, float scale = 1.0f, uint64_t seed = 7) {
  return t::Tensor(TestMatrix(rows, cols, scale, seed), /*requires_grad=*/true);
}

std::vector<t::Tensor> WithInputs(const Module& m,
                                  std::initializer_list<t::Tensor> inputs) {
  std::vector<t::Tensor> params = m.Parameters();
  params.insert(params.end(), inputs.begin(), inputs.end());
  return params;
}

void ExpectOk(const GradCheckResult& result) {
  EXPECT_TRUE(result.ok) << result.Summary();
  EXPECT_GT(result.entries_checked, 0);
}

TEST(GradCheckNn, Linear) {
  util::Rng rng(1);
  for (auto [batch, in, out] :
       std::vector<std::array<int, 3>>{{4, 3, 5}, {1, 6, 2}, {5, 1, 1}}) {
    Linear layer(in, out, rng);
    t::Tensor x = Param(batch, in, 1.0f, 11);
    ExpectOk(CheckOpGradient(
        "nn.Linear",
        [&] { return t::SumAll(t::Square(layer.Forward(x))); },
        WithInputs(layer, {x})));
  }
  // Bias-free variant exercises the other Forward branch.
  Linear no_bias(3, 2, rng, /*bias=*/false);
  t::Tensor x = Param(4, 3, 1.0f, 12);
  ExpectOk(CheckOpGradient(
      "nn.Linear",
      [&] { return t::SumAll(t::Square(no_bias.Forward(x))); },
      WithInputs(no_bias, {x})));
}

TEST(GradCheckNn, Mlp) {
  util::Rng rng(2);
  // Tanh hidden activation: smooth everywhere, unlike relu whose kink at 0
  // poisons finite differences for freshly initialized nets.
  Mlp mlp({4, 6, 3}, rng, Activation::kTanh, Activation::kSigmoid);
  t::Tensor x = Param(5, 4, 1.0f, 21);
  ExpectOk(CheckOpGradient(
      "nn.Mlp", [&] { return t::SumAll(t::Square(mlp.Forward(x))); },
      WithInputs(mlp, {x})));

  // Single-sample batch.
  t::Tensor one = Param(1, 4, 1.0f, 22);
  ExpectOk(CheckOpGradient(
      "nn.Mlp", [&] { return t::SumAll(t::Square(mlp.Forward(one))); },
      WithInputs(mlp, {one})));
}

TEST(GradCheckNn, GcnConvSparse) {
  util::Rng rng(3);
  GcnConv conv(3, 4, rng);
  auto a_hat = std::make_shared<t::SparseMatrix>(
      4, 4,
      std::vector<t::Triplet>{{0, 0, 0.5f},
                              {0, 1, 0.5f},
                              {1, 0, 0.3f},
                              {1, 1, 0.7f},
                              {2, 2, 1.0f},
                              {3, 1, 0.2f},
                              {3, 3, 0.8f}});
  t::Tensor x = Param(4, 3, 1.0f, 31);
  ExpectOk(CheckOpGradient(
      "nn.GcnConv",
      [&] { return t::SumAll(t::Square(conv.Forward(a_hat, x))); },
      WithInputs(conv, {x})));

  // Single-node community: 1 x 1 adjacency.
  auto self = std::make_shared<t::SparseMatrix>(
      1, 1, std::vector<t::Triplet>{{0, 0, 1.0f}});
  t::Tensor x1 = Param(1, 3, 1.0f, 32);
  ExpectOk(CheckOpGradient(
      "nn.GcnConv",
      [&] { return t::SumAll(t::Square(conv.Forward(self, x1))); },
      WithInputs(conv, {x1})));
}

TEST(GradCheckNn, GcnConvDense) {
  util::Rng rng(4);
  GcnConv conv(3, 2, rng);
  // Adjacency participates in autograd, routed through the differentiable
  // row normalization used for coarsened levels. Entries are shifted
  // positive so normalization stays away from its eps floor.
  t::Tensor a = Param(4, 4, 0.4f, 41);
  for (int64_t i = 0; i < a.value().size(); ++i) {
    a.mutable_value().data()[i] += 1.0f;
  }
  t::Tensor x = Param(4, 3, 1.0f, 42);
  ExpectOk(CheckOpGradient(
      "nn.GcnConvDense",
      [&] {
        return t::SumAll(
            t::Square(conv.ForwardDense(RowNormalizeAdjacency(a), x)));
      },
      WithInputs(conv, {a, x})));
}

TEST(GradCheckNn, PairNorm) {
  // No parameters: the check is over the input. Needs >= 2 rows — a single
  // row centers to exactly zero, which parks every row norm on the eps
  // floor (a genuinely non-differentiable point).
  t::Tensor x = Param(5, 3, 1.0f, 51);
  ExpectOk(CheckOpGradient(
      "nn.PairNorm",
      [&] { return t::SumAll(t::Square(PairNorm(x, 1.5f))); }, {x}));

  // Single-column features (n x 1).
  t::Tensor narrow = Param(4, 1, 1.0f, 52);
  ExpectOk(CheckOpGradient(
      "nn.PairNorm",
      [&] { return t::SumAll(t::Square(PairNorm(narrow))); }, {narrow}));
}

TEST(GradCheckNn, GruCell) {
  util::Rng rng(5);
  GruCell cell(3, 4, rng);
  t::Tensor x = Param(2, 3, 1.0f, 61);
  t::Tensor h = Param(2, 4, 1.0f, 62);
  ExpectOk(CheckOpGradient(
      "nn.GruCell",
      [&] { return t::SumAll(t::Square(cell.Forward(x, h))); },
      WithInputs(cell, {x, h})));

  // Two chained steps: gradients must survive the recurrence.
  t::Tensor x2 = Param(1, 3, 1.0f, 63);
  ExpectOk(CheckOpGradient(
      "nn.GruCell",
      [&] {
        t::Tensor state = cell.Forward(x2, cell.InitialState(1));
        return t::SumAll(t::Square(cell.Forward(x2, state)));
      },
      WithInputs(cell, {x2})));
}

TEST(GradCheckNn, TopKPool) {
  util::Rng rng(6);
  TopKPool pool(3, 0.5, rng);
  // Rows are strongly separated along a fixed direction so the +-1e-3
  // finite-difference perturbations can never flip the top-k selection
  // (selection flips are step discontinuities no checker tolerates).
  t::Tensor proj = pool.Parameters()[0];
  ASSERT_EQ(proj.rows(), 3);
  float proj_values[3] = {0.6f, -0.2f, 0.6f};
  for (int i = 0; i < 3; ++i) {
    proj.mutable_value().At(i, 0) = proj_values[i];
  }
  t::Tensor x = Param(6, 3, 0.05f, 71);
  for (int i = 0; i < 6; ++i) {
    // Score gap between consecutive rows ~ (0.6 - 0.2 + 0.6) = 1.0.
    for (int j = 0; j < 3; ++j) x.mutable_value().At(i, j) += 1.0f * i;
  }
  t::Tensor adjacency = Param(6, 6, 1.0f, 72);
  ExpectOk(CheckOpGradient(
      "nn.TopKPool",
      [&] {
        TopKPoolOutput out = pool.Forward(x, adjacency);
        return t::Add(t::SumAll(t::Square(out.features)),
                      t::SumAll(t::Square(out.adjacency)));
      },
      WithInputs(pool, {x, adjacency})));
}

TEST(GradCheckNn, TopKPoolProjectionNormGradientRegression) {
  // Pinned regression: the score normalization y = X p / ||p|| used to
  // treat ||p|| as a constant, silently dropping the -y p/||p||^2 term from
  // dL/dp. With x = p^T and p = [2], y = 2/2 = 1 regardless of p, so the
  // true projection gradient of any loss over y is exactly 0 — the old
  // detached-norm code reported dL/dp = 1/||p|| * x = 1 instead.
  util::Rng rng(7);
  TopKPool pool(1, 1.0, rng);
  t::Tensor proj = pool.Parameters()[0];
  proj.mutable_value().At(0, 0) = 2.0f;
  t::Tensor x(TestMatrix(1, 1, 1.0f, 81), /*requires_grad=*/false);
  x.mutable_value().At(0, 0) = 2.0f;
  t::Tensor adjacency(TestMatrix(1, 1, 1.0f, 82), /*requires_grad=*/false);

  proj.ZeroGrad();
  TopKPoolOutput out = pool.Forward(x, adjacency);
  t::Backward(t::SumAll(out.features));
  ASSERT_EQ(proj.grad().size(), 1);
  // d features / d p must vanish: features = sigmoid(1) * x and y == 1 is
  // scale-invariant in p.
  EXPECT_NEAR(proj.grad().At(0, 0), 0.0f, 1e-5f);
}

TEST(GradCheckNn, TopKPoolEmptyCommunityRegression) {
  // Pinned regression: an empty community (0-node input) used to crash —
  // keep = max(1, ceil(ratio * 0)) = 1 asked GatherRows for a row that
  // does not exist. An empty pool must keep nothing.
  util::Rng rng(8);
  TopKPool pool(3, 0.5, rng);
  t::Tensor x = Param(0, 3, 1.0f, 91);
  t::Tensor adjacency = Param(0, 0, 1.0f, 92);
  TopKPoolOutput out = pool.Forward(x, adjacency);
  EXPECT_EQ(out.features.rows(), 0);
  EXPECT_EQ(out.features.cols(), 3);
  EXPECT_EQ(out.adjacency.rows(), 0);
  EXPECT_EQ(out.adjacency.cols(), 0);
  EXPECT_TRUE(out.kept.empty());
}

}  // namespace
}  // namespace cpgan::nn
