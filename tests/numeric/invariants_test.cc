// Property-based invariant checks for the graph/eval metric stack: instead
// of golden values, these assert the mathematical identities each metric
// must satisfy on deterministic families of random graphs and histograms.
// (Golden-value tests for the MMD estimators live in mmd_golden_test.cc.)

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "community/partition.h"
#include "eval/mmd.h"
#include "graph/algorithms.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace cpgan {
namespace {

/// Deterministic G(n, p) graph.
graph::Graph RandomGraph(int n, double p, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<graph::Edge> edges;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.Uniform() < p) edges.push_back({u, v});
    }
  }
  return graph::Graph(n, edges);
}

/// Deterministic random histogram with `bins` non-negative entries.
std::vector<double> RandomHistogram(int bins, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> h(bins);
  for (int i = 0; i < bins; ++i) h[i] = rng.Uniform();
  return h;
}

// ---------------------------------------------------------------------------
// Modularity: Q in [-0.5, 1] for every partition of every graph.

TEST(Invariants, ModularityRange) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    graph::Graph g = RandomGraph(20, 0.2, seed);
    if (g.num_edges() == 0) continue;
    for (int k : {1, 2, 5, 20}) {
      // Arbitrary (bad) partitions still must respect the range.
      std::vector<int> labels(g.num_nodes());
      for (int v = 0; v < g.num_nodes(); ++v) labels[v] = v % k;
      double q = community::Modularity(g, community::Partition(labels));
      EXPECT_GE(q, -0.5) << "seed " << seed << " k " << k;
      EXPECT_LE(q, 1.0) << "seed " << seed << " k " << k;
    }
  }
}

TEST(Invariants, ModularitySingleCommunityIsZero) {
  graph::Graph g = RandomGraph(15, 0.3, 7);
  std::vector<int> labels(g.num_nodes(), 0);
  // All edges internal, (sum deg)^2/(2m)^2 = 1 => Q = 1 - 1 = 0.
  EXPECT_NEAR(community::Modularity(g, community::Partition(labels)), 0.0,
              1e-12);
}

// ---------------------------------------------------------------------------
// MMD: pseudo-metric properties under both estimators.

TEST(Invariants, MmdSelfDistance) {
  std::vector<std::vector<double>> a;
  for (uint64_t s = 1; s <= 4; ++s) a.push_back(RandomHistogram(6, s));
  for (auto kernel : {eval::MmdKernel::kGaussianEmd, eval::MmdKernel::kGaussianTv}) {
    // Unbiased: E[MMD^2(X, X)] = 0, and for identical sets it is exactly 0.
    EXPECT_NEAR(
        eval::Mmd(a, a, kernel, 1.0, eval::MmdEstimator::kUnbiased), 0.0,
        1e-12);
    // Biased: for identical sets the cross-mean (which also includes the
    // matched pairs) equals the within-set means, so it is 0 as well.
    EXPECT_NEAR(eval::Mmd(a, a, kernel, 1.0, eval::MmdEstimator::kBiased),
                0.0, 1e-12);
  }
}

TEST(Invariants, MmdSymmetryAndNonNegativity) {
  std::vector<std::vector<double>> a, b;
  for (uint64_t s = 1; s <= 3; ++s) a.push_back(RandomHistogram(5, s));
  for (uint64_t s = 11; s <= 15; ++s) b.push_back(RandomHistogram(5, s));
  for (auto estimator :
       {eval::MmdEstimator::kBiased, eval::MmdEstimator::kUnbiased}) {
    double ab = eval::Mmd(a, b, eval::MmdKernel::kGaussianEmd, 1.0, estimator);
    double ba = eval::Mmd(b, a, eval::MmdKernel::kGaussianEmd, 1.0, estimator);
    EXPECT_GE(ab, 0.0);
    EXPECT_NEAR(ab, ba, 1e-12);
  }
}

TEST(Invariants, MmdBiasedDominatesUnbiased) {
  // The self-pair terms k(p,p) = 1 are the maximum of the Gaussian kernel,
  // so including them (biased) can only raise the within-set means and
  // hence the estimate: MMD^2_biased >= MMD^2_unbiased.
  std::vector<std::vector<double>> a, b;
  for (uint64_t s = 1; s <= 4; ++s) a.push_back(RandomHistogram(6, s));
  for (uint64_t s = 21; s <= 23; ++s) b.push_back(RandomHistogram(6, s));
  double biased =
      eval::Mmd(a, b, eval::MmdKernel::kGaussianTv, 1.0, eval::MmdEstimator::kBiased);
  double unbiased = eval::Mmd(a, b, eval::MmdKernel::kGaussianTv, 1.0,
                              eval::MmdEstimator::kUnbiased);
  EXPECT_GE(biased, unbiased - 1e-12);
}

TEST(Invariants, MmdSingletonSetsEstimatorIndependent) {
  // Table IV compares one graph against one graph; with n = 1 there are no
  // off-diagonal pairs and the unbiased estimator falls back to the biased
  // one, so the two must agree exactly.
  std::vector<std::vector<double>> a = {RandomHistogram(8, 31)};
  std::vector<std::vector<double>> b = {RandomHistogram(8, 32)};
  double biased = eval::Mmd(a, b, eval::MmdKernel::kGaussianEmd, 1.0,
                            eval::MmdEstimator::kBiased);
  double unbiased = eval::Mmd(a, b, eval::MmdKernel::kGaussianEmd, 1.0,
                              eval::MmdEstimator::kUnbiased);
  EXPECT_EQ(biased, unbiased);
}

// ---------------------------------------------------------------------------
// EMD / TV: metric axioms on the common normalized support.

TEST(Invariants, EmdTvMetricAxioms) {
  std::vector<std::vector<double>> hists;
  for (uint64_t s = 41; s <= 45; ++s) {
    hists.push_back(RandomHistogram(3 + static_cast<int>(s % 4), s));
  }
  for (size_t i = 0; i < hists.size(); ++i) {
    EXPECT_NEAR(eval::Emd1D(hists[i], hists[i]), 0.0, 1e-12);
    EXPECT_NEAR(eval::TotalVariation(hists[i], hists[i]), 0.0, 1e-12);
    for (size_t j = 0; j < hists.size(); ++j) {
      double emd_ij = eval::Emd1D(hists[i], hists[j]);
      double tv_ij = eval::TotalVariation(hists[i], hists[j]);
      // Symmetry and range.
      EXPECT_NEAR(emd_ij, eval::Emd1D(hists[j], hists[i]), 1e-12);
      EXPECT_NEAR(tv_ij, eval::TotalVariation(hists[j], hists[i]), 1e-12);
      EXPECT_GE(emd_ij, 0.0);
      EXPECT_GE(tv_ij, 0.0);
      EXPECT_LE(tv_ij, 1.0);
      // Triangle inequality through every third histogram.
      for (size_t k = 0; k < hists.size(); ++k) {
        EXPECT_LE(emd_ij, eval::Emd1D(hists[i], hists[k]) +
                              eval::Emd1D(hists[k], hists[j]) + 1e-12);
        EXPECT_LE(tv_ij, eval::TotalVariation(hists[i], hists[k]) +
                             eval::TotalVariation(hists[k], hists[j]) + 1e-12);
      }
    }
  }
}

TEST(Invariants, EmdBoundedBySupportSize) {
  // On a common support of W unit-width bins, EMD <= W - 1 (mass moved
  // across the whole support).
  std::vector<double> left = {1.0, 0.0, 0.0, 0.0, 0.0};
  std::vector<double> right = {0.0, 0.0, 0.0, 0.0, 1.0};
  EXPECT_NEAR(eval::Emd1D(left, right), 4.0, 1e-12);
  EXPECT_NEAR(eval::TotalVariation(left, right), 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// PageRank: a probability distribution even with dangling nodes.

TEST(Invariants, PageRankSumsToOneOnSinkGraph) {
  // Satellite (c): path 0-1 plus isolated sinks 2, 3, 4. In the undirected
  // CSR a node is dangling iff it is isolated. A buggy dangling treatment
  // (double-damping or dropping the mass) breaks sum == 1.
  graph::Graph g(5, {{0, 1}});
  for (int iterations : {1, 5, 50}) {
    std::vector<double> rank = graph::PageRank(g, 0.85, iterations);
    ASSERT_EQ(rank.size(), 5u);
    double total = 0.0;
    for (double r : rank) {
      EXPECT_GE(r, 0.0);
      total += r;
    }
    EXPECT_NEAR(total, 1.0, 1e-12) << "after " << iterations << " iterations";
  }
  // All-sink graph: every node dangling, uniform stationary distribution.
  graph::Graph sinks(4, {});
  std::vector<double> rank = graph::PageRank(sinks, 0.85, 25);
  for (double r : rank) EXPECT_NEAR(r, 0.25, 1e-12);
}

TEST(Invariants, PageRankSumsToOneOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    // p = 0.1 leaves some isolated (dangling) nodes at n = 30.
    graph::Graph g = RandomGraph(30, 0.1, seed);
    std::vector<double> rank = graph::PageRank(g, 0.85, 30);
    double total = 0.0;
    for (double r : rank) total += r;
    EXPECT_NEAR(total, 1.0, 1e-10) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Clustering coefficients: all in [0, 1]; exact on canonical graphs.

TEST(Invariants, ClusteringCoefficientsInUnitInterval) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    graph::Graph g = RandomGraph(25, 0.25, seed);
    for (double c : graph::LocalClusteringCoefficients(g)) {
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, 1.0);
    }
    double avg = graph::AverageClusteringCoefficient(g);
    EXPECT_GE(avg, 0.0);
    EXPECT_LE(avg, 1.0);
  }
  // Triangle: every coefficient exactly 1. Path: all 0.
  graph::Graph triangle(3, {{0, 1}, {1, 2}, {0, 2}});
  for (double c : graph::LocalClusteringCoefficients(triangle)) {
    EXPECT_DOUBLE_EQ(c, 1.0);
  }
  graph::Graph path(3, {{0, 1}, {1, 2}});
  for (double c : graph::LocalClusteringCoefficients(path)) {
    EXPECT_DOUBLE_EQ(c, 0.0);
  }
}

}  // namespace
}  // namespace cpgan
