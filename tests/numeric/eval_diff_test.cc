// Differential tests for the eval/community hot-path rewrite: the cached
// Gram-matrix MMD and the flat-CSR Louvain against the pre-rewrite
// implementations preserved verbatim in testing/eval_ref.*.
//
// MMD must agree *bitwise* with the reference at every thread count — the
// rewrite caches the per-sample common-support normalization and shares one
// symmetric Gram matrix, but every surviving floating-point operation is the
// same op in the same order (see the note in eval/mmd.cc on why the prefix
// CDFs are deliberately not cached).
//
// Louvain's gains are bitwise identical too (all weights are exact integers
// in double); the one legal divergence channel is the argmax scan order on
// exactly-tied gains, so tie-free fixtures are held to exact partition
// equality and tie-heavy ones to quality parity.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "community/louvain.h"
#include "community/metrics.h"
#include "data/synthetic.h"
#include "eval/mmd.h"
#include "generators/ba.h"
#include "graph/stats.h"
#include "testing/diff_harness.h"
#include "testing/eval_ref.h"
#include "util/rng.h"

namespace cpgan {
namespace {

using eval::Mmd;
using eval::MmdEstimator;
using eval::MmdKernel;

graph::Graph MakeSbm(int nodes, int edges, int comms, uint64_t seed) {
  data::CommunityGraphParams params;
  params.num_nodes = nodes;
  params.num_edges = edges;
  params.num_communities = comms;
  params.intra_fraction = 0.95;
  params.community_size_skew = 0.0;
  util::Rng rng(seed);
  return data::MakeCommunityGraph(params, rng);
}

// Degree-histogram sample sets with deliberately unequal supports (SBM
// histograms are ~30 bins, BA ones 40-65), so the common-support padding is
// exercised on every pair.
void MakeHistogramSets(std::vector<std::vector<double>>& a,
                       std::vector<std::vector<double>>& b) {
  for (uint64_t s = 0; s < 6; ++s) {
    graph::Graph g = MakeSbm(200, 900, 8, 20 + s);
    int maxd = 1;
    for (int v = 0; v < g.num_nodes(); ++v) maxd = std::max(maxd, g.degree(v));
    a.push_back(graph::DegreeHistogram(g, maxd));
    util::Rng rng(40 + s);
    graph::Graph h = generators::BaGenerator(200, 4).Generate(rng);
    int maxdh = 1;
    for (int v = 0; v < h.num_nodes(); ++v) {
      maxdh = std::max(maxdh, h.degree(v));
    }
    b.push_back(graph::DegreeHistogram(h, maxdh));
  }
}

TEST(MmdDiffTest, BitwiseMatchesReferenceAcrossThreads) {
  std::vector<std::vector<double>> a, b;
  MakeHistogramSets(a, b);
  const struct {
    MmdKernel kernel;
    MmdEstimator estimator;
    double sigma;
  } kCases[] = {
      {MmdKernel::kGaussianEmd, MmdEstimator::kBiased, 1.0},
      {MmdKernel::kGaussianEmd, MmdEstimator::kUnbiased, 1.0},
      {MmdKernel::kGaussianTv, MmdEstimator::kBiased, 1.0},
      {MmdKernel::kGaussianTv, MmdEstimator::kUnbiased, 1.0},
      {MmdKernel::kGaussianEmd, MmdEstimator::kBiased, 2.0},
      {MmdKernel::kGaussianEmd, MmdEstimator::kUnbiased, 0.5},
  };
  for (const auto& c : kCases) {
    const double want =
        testing::RefMmd(a, b, c.kernel, c.sigma, c.estimator);
    for (int threads : {1, 2, 8}) {
      testing::ScopedThreads scoped(threads);
      const double got = Mmd(a, b, c.kernel, c.sigma, c.estimator);
      EXPECT_EQ(got, want) << "threads=" << threads
                           << " sigma=" << c.sigma;
    }
  }
}

TEST(MmdDiffTest, BitwiseMatchesReferenceOnSmallSets) {
  // Singleton and two-element sets take the serial Gram fallback and the
  // singleton within-set estimator fallback; hold those to the reference
  // too.
  std::vector<std::vector<double>> a, b;
  MakeHistogramSets(a, b);
  const std::vector<std::vector<double>> a1 = {a[0]};
  const std::vector<std::vector<double>> b1 = {b[0]};
  const std::vector<std::vector<double>> a2 = {a[0], a[1]};
  for (MmdEstimator est : {MmdEstimator::kBiased, MmdEstimator::kUnbiased}) {
    EXPECT_EQ(Mmd(a1, b1, MmdKernel::kGaussianEmd, 1.0, est),
              testing::RefMmd(a1, b1, MmdKernel::kGaussianEmd, 1.0, est));
    EXPECT_EQ(Mmd(a2, b1, MmdKernel::kGaussianTv, 0.7, est),
              testing::RefMmd(a2, b1, MmdKernel::kGaussianTv, 0.7, est));
  }
}

TEST(MmdDiffTest, IdenticalSetsGiveExactZero) {
  std::vector<std::vector<double>> a, b;
  MakeHistogramSets(a, b);
  // k(p, p) multiplies exp(-0.0) = 1 exactly, and the unbiased estimator's
  // cross/within sums then cancel term-for-term in the same order, so the
  // self-comparison is an exact 0.0 — in both implementations.
  EXPECT_EQ(Mmd(a, a, MmdKernel::kGaussianEmd, 1.0, MmdEstimator::kUnbiased),
            0.0);
  EXPECT_EQ(testing::RefMmd(a, a, MmdKernel::kGaussianEmd, 1.0,
                            MmdEstimator::kUnbiased),
            0.0);
}

// ---------------------------------------------------------------------------
// Louvain
// ---------------------------------------------------------------------------

graph::Graph TwoCliquesWithBridge() {
  std::vector<graph::Edge> edges;
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) {
      edges.emplace_back(i, j);
      edges.emplace_back(6 + i, 6 + j);
    }
  }
  edges.emplace_back(0, 6);
  return graph::Graph(12, edges);
}

void ExpectSamePartitions(const community::LouvainResult& got,
                          const community::LouvainResult& want) {
  ASSERT_EQ(got.levels.size(), want.levels.size());
  for (size_t l = 0; l < got.levels.size(); ++l) {
    ASSERT_EQ(got.levels[l].num_nodes(), want.levels[l].num_nodes());
    for (int v = 0; v < got.levels[l].num_nodes(); ++v) {
      ASSERT_EQ(got.levels[l].label(v), want.levels[l].label(v))
          << "level " << l << " node " << v;
    }
  }
  EXPECT_EQ(got.modularity, want.modularity);
}

TEST(LouvainDiffTest, ExactMatchOnTieFreeFixtures) {
  // On these fixtures no two candidate moves ever have exactly equal gain,
  // so the rewrite must reproduce the reference level-by-level, including
  // the compacted community numbering (both compact in first-seen order).
  const graph::Graph cliques = TwoCliquesWithBridge();
  const graph::Graph sbm = MakeSbm(200, 900, 8, 11);
  const struct {
    const graph::Graph* g;
    uint64_t seed;
  } kCases[] = {{&cliques, 1}, {&sbm, 111}};
  for (const auto& c : kCases) {
    util::Rng ref_rng(c.seed);
    const community::LouvainResult want =
        testing::RefLouvain(*c.g, ref_rng);
    for (int threads : {1, 2, 8}) {
      testing::ScopedThreads scoped(threads);
      util::Rng rng(c.seed);
      const community::LouvainResult got = community::Louvain(*c.g, rng);
      ExpectSamePartitions(got, want);
    }
  }
}

TEST(LouvainDiffTest, QualityParityOnTieHeavyGraphs) {
  // Sparse SBM and BA graphs hit exactly-tied gains (gain gaps are integer
  // multiples of 1/2m), where the reference breaks ties in unordered_map
  // iteration order — a libstdc++ hashing artifact the flat-CSR rewrite
  // cannot (and should not) replicate. Partition quality must still agree:
  // near-identical modularity and high NMI against the reference labels.
  data::CommunityGraphParams params;  // 500 nodes, 1500 edges, 40 comms
  util::Rng gseed(7);
  const graph::Graph sbm = data::MakeCommunityGraph(params, gseed);
  util::Rng bseed(5);
  const graph::Graph ba = generators::BaGenerator(300, 3).Generate(bseed);
  const struct {
    const char* name;
    const graph::Graph* g;
    uint64_t seed;
    // BA graphs have no planted structure, so tie-breaking reshuffles the
    // (many, near-equivalent) partitions wholesale; the SBM's planted
    // blocks keep the two partitions strongly aligned.
    double min_nmi;
  } kCases[] = {{"sbm500", &sbm, 77, 0.8}, {"ba300", &ba, 55, 0.4}};
  for (const auto& c : kCases) {
    util::Rng ref_rng(c.seed);
    const community::LouvainResult want =
        testing::RefLouvain(*c.g, ref_rng);
    util::Rng rng(c.seed);
    const community::LouvainResult got = community::Louvain(*c.g, rng);
    EXPECT_NEAR(got.modularity, want.modularity, 0.02) << c.name;
    EXPECT_GE(community::NormalizedMutualInformation(
                  got.FinalPartition(), want.FinalPartition()),
              c.min_nmi)
        << c.name;
  }
}

}  // namespace
}  // namespace cpgan
