// Coverage backstop for the gradcheck bundle: after every gradcheck test in
// this binary has run, assert that each op in GradCheckRegistry::RequiredOps()
// was exercised through CheckOpGradient at least once. Adding an op to
// tensor/ops.h (and its name to RequiredOps) without writing a gradient
// check fails the bundle here.
//
// Two ordering requirements, both enforced by tests/CMakeLists.txt:
//  * this file MUST be linked into the same executable as all the gradcheck
//    tests — the registry is process-global state, so a separate binary
//    would observe an empty registry;
//  * it MUST be the LAST source of the bundle — gtest runs suites in
//    registration (link) order, so the assertion sees the finished registry.
//    (An Environment::TearDown would be order-proof, but its failures do not
//    propagate to the process exit code under the bundled gtest.)
// Corollary: running this binary under --gtest_shuffle or with a filter
// that skips op tests legitimately reports the skipped ops as uncovered.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "testing/gradcheck.h"

namespace cpgan::testing {
namespace {

// Sanity: the canonical list itself is well-formed (non-empty, no dups).
TEST(GradCheckCoverage, RequiredOpsListIsWellFormed) {
  const std::vector<std::string>& ops = GradCheckRegistry::RequiredOps();
  ASSERT_FALSE(ops.empty());
  std::set<std::string> unique(ops.begin(), ops.end());
  EXPECT_EQ(unique.size(), ops.size()) << "duplicate entry in RequiredOps";
}

TEST(GradCheckCoverage, EveryRegisteredOpHasAGradientCheck) {
  const std::vector<std::string> missing = GradCheckRegistry::Global().Missing();
  std::string joined;
  for (const std::string& op : missing) {
    if (!joined.empty()) joined += ", ";
    joined += op;
  }
  EXPECT_TRUE(missing.empty())
      << missing.size() << " registered op(s) have no gradient check: "
      << joined
      << "\nAdd a CheckOpGradient(...) call to "
         "tests/numeric/gradcheck_ops_test.cc or gradcheck_nn_test.cc, or "
         "remove the op from GradCheckRegistry::RequiredOps().";
}

}  // namespace
}  // namespace cpgan::testing
