// Edge-case coverage for graph::LoadEdgeListDetailed: exact LoadResult
// counter assertions for duplicate edges, self-loops, out-of-range ids, and
// trailing garbage, in both lenient and strict modes. Pins the trailing
// garbage bug: "1 2 junk", "1 2 3" and "1 2.5" used to be silently accepted
// as edge (1, 2).

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "graph/io.h"
#include "util/check.h"

namespace cpgan::graph {
namespace {

class TempEdgeFile {
 public:
  explicit TempEdgeFile(const std::string& contents) {
    char buffer[] = "/tmp/cpgan_io_test_XXXXXX";
    int fd = mkstemp(buffer);
    CPGAN_CHECK(fd >= 0);
    path_ = buffer;
    close(fd);
    std::ofstream out(path_);
    out << contents;
  }
  ~TempEdgeFile() { std::remove(path_.c_str()); }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(IoStrict, CleanFileHasZeroCounters) {
  TempEdgeFile file(
      "# comment\n"
      "% also a comment\n"
      "0 1\n"
      "\n"
      "1 2\n");
  LoadResult result = LoadEdgeListDetailed(file.path());
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.malformed_lines, 0);
  EXPECT_EQ(result.self_loops, 0);
  EXPECT_EQ(result.duplicate_edges, 0);
  EXPECT_EQ(result.total_skipped(), 0);
  EXPECT_EQ(result.graph->num_nodes(), 3);
  EXPECT_EQ(result.graph->num_edges(), 2);
}

TEST(IoStrict, DuplicateEdgesCountedOncePerRepeat) {
  // 0-1 appears three times (one reversed): two duplicates. The undirected
  // pair is deduplicated regardless of orientation.
  TempEdgeFile file(
      "0 1\n"
      "1 0\n"
      "0 1\n"
      "1 2\n");
  LoadResult result = LoadEdgeListDetailed(file.path());
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.duplicate_edges, 2);
  EXPECT_EQ(result.malformed_lines, 0);
  EXPECT_EQ(result.self_loops, 0);
  EXPECT_EQ(result.graph->num_edges(), 2);
}

TEST(IoStrict, SelfLoopsDroppedNodeKept) {
  TempEdgeFile file(
      "0 0\n"
      "1 2\n"
      "3 3\n");
  LoadResult result = LoadEdgeListDetailed(file.path());
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.self_loops, 2);
  EXPECT_EQ(result.duplicate_edges, 0);
  EXPECT_EQ(result.malformed_lines, 0);
  // Self-looped nodes still exist as (isolated) vertices.
  EXPECT_EQ(result.graph->num_nodes(), 4);
  EXPECT_EQ(result.graph->num_edges(), 1);
}

TEST(IoStrict, OutOfRangeAndNegativeIdsAreMalformed) {
  TempEdgeFile file(
      "-1 2\n"
      "3 -4\n"
      "99999999999999999999999999 1\n"  // overflows long -> parse failure
      "0 1\n");
  LoadResult result = LoadEdgeListDetailed(file.path());
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.malformed_lines, 3);
  EXPECT_EQ(result.graph->num_nodes(), 2);
  EXPECT_EQ(result.graph->num_edges(), 1);
}

TEST(IoStrict, TrailingGarbageIsMalformedRegression) {
  // Pinned regression: each of these parsed as edge (1, 2) before the
  // trailing-token check — weighted lists and float ids loaded silently.
  TempEdgeFile file(
      "1 2 junk\n"
      "1 2 3\n"
      "1 2.5\n"
      "3 4\n");
  LoadResult result = LoadEdgeListDetailed(file.path());
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.malformed_lines, 3);
  EXPECT_EQ(result.self_loops, 0);
  EXPECT_EQ(result.duplicate_edges, 0);
  // Malformed lines must not intern nodes: only 3 and 4 exist.
  EXPECT_EQ(result.graph->num_nodes(), 2);
  EXPECT_EQ(result.graph->num_edges(), 1);
}

TEST(IoStrict, StrictModeFailsWithLineNumbers) {
  LoadOptions strict;
  strict.strict = true;

  {
    TempEdgeFile file("0 1\n0 1\n");
    LoadResult result = LoadEdgeListDetailed(file.path(), strict);
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("duplicate edge"), std::string::npos)
        << result.error;
    EXPECT_NE(result.error.find("line 2"), std::string::npos) << result.error;
  }
  {
    TempEdgeFile file("0 1\n2 2\n");
    LoadResult result = LoadEdgeListDetailed(file.path(), strict);
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("self-loop"), std::string::npos)
        << result.error;
    EXPECT_NE(result.error.find("line 2"), std::string::npos) << result.error;
  }
  {
    TempEdgeFile file("# header\nnot numbers\n");
    LoadResult result = LoadEdgeListDetailed(file.path(), strict);
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("malformed line"), std::string::npos)
        << result.error;
    EXPECT_NE(result.error.find("line 2"), std::string::npos) << result.error;
  }
  {
    TempEdgeFile file("0 1 extra\n");
    LoadResult result = LoadEdgeListDetailed(file.path(), strict);
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("trailing garbage"), std::string::npos)
        << result.error;
    EXPECT_NE(result.error.find("line 1"), std::string::npos) << result.error;
  }
}

TEST(IoStrict, StrictModeAcceptsCleanFile) {
  LoadOptions strict;
  strict.strict = true;
  TempEdgeFile file("0 1\n1 2\n# trailing comment\n");
  LoadResult result = LoadEdgeListDetailed(file.path(), strict);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.total_skipped(), 0);
  EXPECT_EQ(result.graph->num_edges(), 2);
}

TEST(IoStrict, CrlfLineEndingsLoadCleanlyRegression) {
  // Pinned regression: Windows exports end lines with \r\n; getline keeps
  // the \r, which strict mode used to reject as trailing garbage on every
  // line (lenient mode silently dropped the whole file as malformed).
  LoadOptions strict;
  strict.strict = true;
  TempEdgeFile file("# comment\r\n0 1\r\n1 2\r\n");
  LoadResult result = LoadEdgeListDetailed(file.path(), strict);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.total_skipped(), 0);
  EXPECT_EQ(result.graph->num_nodes(), 3);
  EXPECT_EQ(result.graph->num_edges(), 2);
}

TEST(IoStrict, BareCarriageReturnOnBlankLineIsSkipped) {
  // A CRLF file's "blank" lines are "\r": after stripping the CR they are
  // empty and must be skipped, not counted malformed.
  TempEdgeFile file("0 1\r\n\r\n1 2\r\n");
  LoadResult result = LoadEdgeListDetailed(file.path());
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.malformed_lines, 0);
  EXPECT_EQ(result.graph->num_edges(), 2);
}

TEST(IoStrict, Utf8BomOnFirstLineIsStripped) {
  LoadOptions strict;
  strict.strict = true;
  {
    // BOM before a comment.
    TempEdgeFile file("\xEF\xBB\xBF# header\n0 1\n");
    LoadResult result = LoadEdgeListDetailed(file.path(), strict);
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(result.graph->num_edges(), 1);
  }
  {
    // BOM directly before data, with CRLF endings (Notepad's output).
    // Literal split so \xBF does not swallow the following hex digit.
    TempEdgeFile file("\xEF\xBB\xBF" "0 1\r\n1 2\r\n");
    LoadResult result = LoadEdgeListDetailed(file.path(), strict);
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(result.graph->num_nodes(), 3);
    EXPECT_EQ(result.graph->num_edges(), 2);
  }
}

TEST(IoStrict, BomOnLaterLineIsStillMalformed) {
  // Only a first-line BOM is encoding noise; bytes like that mid-file are
  // real data corruption and must keep failing.
  TempEdgeFile file("0 1\n\xEF\xBB\xBF" "1 2\n");
  LoadResult result = LoadEdgeListDetailed(file.path());
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.malformed_lines, 1);
  EXPECT_EQ(result.graph->num_edges(), 1);
}

TEST(IoStrict, MissingFileReportsError) {
  LoadResult result =
      LoadEdgeListDetailed("/tmp/cpgan_definitely_missing_file.txt");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("cannot open"), std::string::npos);
  EXPECT_FALSE(LoadEdgeList("/tmp/cpgan_definitely_missing_file.txt"));
}

}  // namespace
}  // namespace cpgan::graph
